// Workload generator tests: the synthetic ShareGPT marginals the paper's
// experiments depend on (§2.3, Fig. 2), Poisson arrivals, and trace I/O.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/workload/arrivals.h"
#include "src/workload/sharegpt.h"
#include "src/workload/trace_io.h"

namespace ca {
namespace {

std::vector<SessionTrace> Sample(std::size_t n, std::uint64_t seed = 7) {
  ShareGptGenerator gen(ShareGptConfig{}, seed);
  return gen.Generate(n);
}

TEST(ShareGptTest, DeterministicForSeed) {
  const auto a = Sample(50, 3);
  const auto b = Sample(50, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].turns.size(), b[i].turns.size());
    for (std::size_t j = 0; j < a[i].turns.size(); ++j) {
      EXPECT_EQ(a[i].turns[j].q_tokens, b[i].turns[j].q_tokens);
      EXPECT_EQ(a[i].turns[j].a_tokens, b[i].turns[j].a_tokens);
    }
  }
}

TEST(ShareGptTest, StructureIsWellFormed) {
  for (const auto& s : Sample(200)) {
    ASSERT_GE(s.turns.size(), 1U);
    ASSERT_LE(s.turns.size(), ShareGptConfig{}.max_turns);
    ASSERT_EQ(s.think_times.size(), s.turns.size());
    EXPECT_EQ(s.think_times[0], 0);
    for (std::size_t j = 1; j < s.think_times.size(); ++j) {
      EXPECT_GE(s.think_times[j], 0);
    }
    for (const Turn& t : s.turns) {
      EXPECT_GE(t.q_tokens, 4U);
      EXPECT_GE(t.a_tokens, 4U);
      EXPECT_LE(t.q_tokens, ShareGptConfig{}.max_turn_tokens);
    }
  }
}

// The published ShareGPT marginals (§2.3): 73% multi-turn, mean 5.75
// turns/session, 47% of sessions > 2K tokens, 30% > 4K tokens. The
// generator must land inside tolerance bands around them.
TEST(ShareGptTest, MatchesPaperMarginals) {
  const auto sessions = Sample(20000);
  const WorkloadSummary s = Summarize(sessions);
  EXPECT_NEAR(s.multi_turn_fraction, 0.73, 0.02);
  EXPECT_NEAR(s.mean_turns, 5.75, 0.40);
  EXPECT_NEAR(s.frac_sessions_over_2k, 0.47, 0.08);
  EXPECT_NEAR(s.frac_sessions_over_4k, 0.30, 0.08);
}

// Fig. 4a: historical tokens dominate in later turns (>99% by turn ~10).
TEST(ShareGptTest, HistoricalTokensDominateLaterTurns) {
  const auto sessions = Sample(20000);
  double hist_sum = 0.0;
  double new_sum = 0.0;
  for (const auto& s : sessions) {
    std::uint64_t hist = 0;
    for (std::size_t j = 0; j < s.turns.size(); ++j) {
      if (j >= 9) {  // turn 10+
        hist_sum += hist;
        new_sum += s.turns[j].q_tokens;
      }
      hist += s.turns[j].total();
    }
  }
  ASSERT_GT(new_sum, 0.0);
  const double hist_frac = hist_sum / (hist_sum + new_sum);
  EXPECT_GT(hist_frac, 0.95);
}

TEST(SummarizeTest, EmptyAndSingle) {
  EXPECT_EQ(Summarize({}).sessions, 0U);
  SessionTrace t;
  t.id = 0;
  t.turns = {Turn{.q_tokens = 10, .a_tokens = 20}};
  t.think_times = {0};
  const WorkloadSummary s = Summarize({t});
  EXPECT_EQ(s.sessions, 1U);
  EXPECT_DOUBLE_EQ(s.mean_turns, 1.0);
  EXPECT_DOUBLE_EQ(s.multi_turn_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_session_tokens, 30.0);
}

TEST(ArrivalsTest, MeanRateMatchesLambda) {
  PoissonArrivals arrivals(2.0, 5);  // 2 sessions/s
  SimTime t = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    t = arrivals.Next(t);
  }
  const double rate = n / ToSeconds(t);
  EXPECT_NEAR(rate, 2.0, 0.1);
}

TEST(ArrivalsTest, StrictlyIncreasing) {
  PoissonArrivals arrivals(1000.0, 6);  // very fast: gaps may round to ~ns
  SimTime t = 0;
  for (int i = 0; i < 1000; ++i) {
    const SimTime next = arrivals.Next(t);
    EXPECT_GT(next, t);
    t = next;
  }
}

TEST(ArrivalsTest, AssignArrivalsIsMonotoneAcrossSessions) {
  auto sessions = Sample(100);
  AssignArrivals(sessions, 1.0, 9);
  for (std::size_t i = 1; i < sessions.size(); ++i) {
    EXPECT_GT(sessions[i].arrival, sessions[i - 1].arrival);
  }
}

TEST(TraceIoTest, RoundTrip) {
  auto sessions = Sample(20, 11);
  AssignArrivals(sessions, 1.0, 12);
  const std::string path = testing::TempDir() + "/ca_trace_test.csv";
  ASSERT_TRUE(SaveTraceCsv(sessions, path).ok());
  auto loaded = LoadTraceCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const SessionTrace& a = sessions[i];
    const SessionTrace& b = (*loaded)[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.arrival, b.arrival);
    ASSERT_EQ(a.turns.size(), b.turns.size());
    for (std::size_t j = 0; j < a.turns.size(); ++j) {
      EXPECT_EQ(a.turns[j].q_tokens, b.turns[j].q_tokens);
      EXPECT_EQ(a.turns[j].a_tokens, b.turns[j].a_tokens);
      EXPECT_EQ(a.think_times[j], b.think_times[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadTraceCsv("/nonexistent/path.csv").ok());
}

TEST(SharedPrefixTest, PromptIsDeterministicAndInVocab) {
  const auto a = SharedPrefixPrompt(96, 1000, 5);
  const auto b = SharedPrefixPrompt(96, 1000, 5);
  const auto c = SharedPrefixPrompt(96, 1000, 6);
  ASSERT_EQ(a.size(), 96U);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed, different prompt
  for (const std::int32_t t : a) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 1000);
  }
  EXPECT_TRUE(SharedPrefixPrompt(0, 1000, 5).empty());
}

TEST(SharedPrefixTest, ApplyFoldsPromptIntoFirstTurnOnly) {
  auto sessions = Sample(50, 21);
  SessionTrace turnless;
  turnless.id = 999;
  sessions.push_back(turnless);  // turn-less session is skipped
  std::vector<std::uint32_t> before_first;
  std::vector<std::uint32_t> before_rest;
  for (const SessionTrace& s : sessions) {
    if (s.turns.empty()) {
      continue;
    }
    before_first.push_back(s.turns.front().q_tokens);
    for (std::size_t j = 1; j < s.turns.size(); ++j) {
      before_rest.push_back(s.turns[j].q_tokens);
    }
  }
  const std::size_t adjusted = ApplySharedPrefix(sessions, 64);
  EXPECT_EQ(adjusted, 50U);
  std::size_t fi = 0;
  std::size_t ri = 0;
  for (const SessionTrace& s : sessions) {
    if (s.turns.empty()) {
      continue;
    }
    EXPECT_EQ(s.turns.front().q_tokens, before_first[fi++] + 64);
    for (std::size_t j = 1; j < s.turns.size(); ++j) {
      EXPECT_EQ(s.turns[j].q_tokens, before_rest[ri++]);
    }
  }
}

// Parameterised sweep: marginals stay in band across seeds (the generator
// must not be calibrated to one lucky seed).
class WorkloadSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadSeedSweep, MarginalsStable) {
  const auto sessions = Sample(8000, GetParam());
  const WorkloadSummary s = Summarize(sessions);
  EXPECT_NEAR(s.multi_turn_fraction, 0.73, 0.03);
  EXPECT_NEAR(s.mean_turns, 5.75, 0.5);
  EXPECT_NEAR(s.frac_sessions_over_4k, 0.30, 0.10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSeedSweep,
                         ::testing::Values(1ULL, 17ULL, 123ULL, 9999ULL));

}  // namespace
}  // namespace ca
