// ShardRouter tests (DESIGN.md §16):
//
//   * a 4-shard router's replies are bitwise-identical to a single
//     ServingLoop over the same session set;
//   * DrainShard under live traffic loses zero accepted sessions and the
//     migrated sessions resume with identical replies;
//   * seeded fault injection on the migration path (export/import I/O
//     errors) degrades to history-only migration + recompute — replies
//     still match a clean engine;
//   * TrySubmit backpressure: new sessions overflow to the least-loaded
//     shard, existing sessions shed (KV locality);
//   * whole-shard failure: a store with every tier quarantined is
//     auto-drained as kQuarantined by PollHealth.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/cluster/shard_router.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/cached_attention.h"
#include "src/model/transformer.h"

namespace ca {
namespace {

std::vector<TokenId> MakeTokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

EngineOptions DefaultEngineOptions() {
  EngineOptions options;
  options.store.dram_capacity = MiB(64);
  options.store.disk_capacity = MiB(256);
  options.store.block_bytes = KiB(64);
  options.store.audit = true;
  return options;
}

// Deterministic workload, wave-interleaved like tests/serve_test.cc.
std::vector<ServeRequest> BuildWorkload(std::size_t sessions, std::size_t turns,
                                        std::size_t vocab,
                                        std::size_t max_reply_tokens = 4) {
  std::vector<ServeRequest> out;
  out.reserve(sessions * turns);
  for (std::size_t t = 0; t < turns; ++t) {
    for (std::size_t s = 0; s < sessions; ++s) {
      ServeRequest req;
      req.session = static_cast<SessionId>(s);
      req.input = MakeTokens(6 + (s + t) % 5, 1000 + s * 100 + t, vocab);
      req.max_reply_tokens = max_reply_tokens;
      out.push_back(std::move(req));
    }
  }
  return out;
}

using ReplyMap = std::map<std::pair<SessionId, std::uint32_t>, std::vector<TokenId>>;

ReplyMap ToReplyMap(const std::vector<ServeReply>& replies) {
  ReplyMap out;
  for (const ServeReply& r : replies) {
    EXPECT_TRUE(r.status.ok()) << "job " << r.job << ": " << r.status;
    const bool inserted =
        out.emplace(std::make_pair(r.session, r.turn_index), r.turn.reply).second;
    EXPECT_TRUE(inserted) << "duplicate (session " << r.session << ", turn "
                          << r.turn_index << ")";
  }
  return out;
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : model_(ModelConfig::Mini(), 51) {}

  // Serial clean-engine reference for a workload: the replies every router
  // configuration must reproduce bitwise (engine determinism contract).
  ReplyMap ReferenceReplies(const std::vector<ServeRequest>& workload) {
    CachedAttentionEngine clean(&model_, DefaultEngineOptions());
    ReplyMap out;
    std::map<SessionId, std::uint32_t> turn_counter;
    for (const ServeRequest& req : workload) {
      auto r = clean.Converse(req.session, req.input, req.max_reply_tokens);
      EXPECT_TRUE(r.ok()) << r.status();
      out[{req.session, ++turn_counter[req.session]}] = r->reply;
    }
    return out;
  }

  static void ExpectSameReplies(const ReplyMap& expected, const ReplyMap& actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (const auto& [key, reply] : expected) {
      const auto it = actual.find(key);
      ASSERT_NE(it, actual.end()) << "session " << key.first << " turn " << key.second
                                  << " never served";
      EXPECT_EQ(it->second, reply) << "session " << key.first << " turn " << key.second
                                   << " diverged";
    }
  }

  Transformer model_;
};

// Acceptance criterion: 4 shards, replies bitwise-identical to one
// ServingLoop for the same session set.
TEST_F(ClusterTest, FourShardsMatchSingleLoopBitwise) {
  const std::size_t kSessions = 16, kTurns = 3;
  const auto workload = BuildWorkload(kSessions, kTurns, model_.config().vocab_size);

  ReplyMap single;
  {
    CachedAttentionEngine engine(&model_, DefaultEngineOptions());
    ServerOptions sopts;
    sopts.num_workers = 1;
    ServingLoop loop(&engine, sopts);
    for (const ServeRequest& req : workload) {
      loop.Submit(req);
    }
    loop.Shutdown();
    single = ToReplyMap(loop.TakeReplies());
  }

  ClusterOptions copts;
  copts.num_shards = 4;
  copts.engine = DefaultEngineOptions();
  copts.server.num_workers = 2;
  ShardRouter router(&model_, copts);
  for (const ServeRequest& req : workload) {
    router.Submit(req);
  }
  router.Shutdown();
  const ReplyMap sharded = ToReplyMap(router.TakeReplies());

  ASSERT_EQ(single.size(), kSessions * kTurns);
  ExpectSameReplies(single, sharded);

  // The ring actually spread the sessions: more than one shard served jobs,
  // and every routed job is accounted for.
  std::size_t shards_used = 0;
  std::uint64_t routed = 0;
  for (ShardId s = 0; s < 4; ++s) {
    const ShardStatus st = router.shard_status(s);
    shards_used += st.jobs_routed > 0 ? 1 : 0;
    routed += st.jobs_routed;
  }
  EXPECT_GT(shards_used, 1U);
  EXPECT_EQ(routed, kSessions * kTurns);
}

// Acceptance criterion: DrainShard under live traffic loses zero accepted
// sessions; migrated sessions resume with identical replies.
TEST_F(ClusterTest, DrainUnderLiveTrafficLosesNothing) {
  const std::size_t kSessions = 12, kTurns = 4;
  const auto workload = BuildWorkload(kSessions, kTurns, model_.config().vocab_size);
  const ReplyMap expected = ReferenceReplies(workload);

  ClusterOptions copts;
  copts.num_shards = 4;
  copts.engine = DefaultEngineOptions();
  copts.server.num_workers = 2;
  ShardRouter router(&model_, copts);

  // Wave 1 populates every session's KV cache and pins it to a shard.
  for (std::size_t i = 0; i < kSessions; ++i) {
    router.Submit(workload[i]);
  }
  router.WaitIdle();
  const ShardId victim = router.ShardOf(0);  // session 0's pin: never empty
  ASSERT_GT(router.shard_status(victim).sessions_resident, 0U);

  // Drain the victim while the remaining waves are being submitted: turns
  // for its sessions park mid-drain and flush to the new owners.
  std::thread drainer([&] { EXPECT_TRUE(router.DrainShard(victim).ok()); });
  for (std::size_t i = kSessions; i < workload.size(); ++i) {
    router.Submit(workload[i]);
  }
  drainer.join();
  router.WaitIdle();
  router.Shutdown();

  ExpectSameReplies(expected, ToReplyMap(router.TakeReplies()));

  const ShardStatus st = router.shard_status(victim);
  EXPECT_EQ(st.health, ShardHealth::kDrained);
  EXPECT_GT(st.sessions_migrated_out, 0U);
  EXPECT_EQ(st.sessions_resident, 0U);
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_NE(router.ShardOf(static_cast<SessionId>(s)), victim)
        << "session " << s << " still placed on the drained shard";
  }
  // The KV payloads travelled: importing shards record the installs.
  std::uint64_t imports = 0;
  for (ShardId s = 0; s < 4; ++s) {
    imports += router.shard_engine(s).store().stats().imports;
  }
  EXPECT_GT(imports, 0U);
}

// Acceptance criterion (fault leg): with seeded I/O faults on the shards'
// disk tiers, exports/imports on the migration path can fail — the session
// then moves history-only and recomputes, and every reply still matches the
// clean reference.
TEST_F(ClusterTest, SeededFaultsOnMigrationPathStillMatchCleanReplies) {
  const std::size_t kSessions = 10, kTurns = 3;
  const auto workload = BuildWorkload(kSessions, kTurns, model_.config().vocab_size);
  const ReplyMap expected = ReferenceReplies(workload);

  ClusterOptions copts;
  copts.num_shards = 4;
  copts.server.num_workers = 2;
  copts.engine_options_fn = [](std::size_t shard) {
    EngineOptions options = DefaultEngineOptions();
    // Tiny DRAM forces disk traffic so the injector sees the save, export
    // and import I/O; high permanent-fault rates make some of them fail.
    options.store.dram_capacity = KiB(128);
    options.store.block_bytes = KiB(32);
    options.store.disk_fault.seed = 77 + shard;
    options.store.disk_fault.read_permanent_p = 0.25;
    options.store.disk_fault.write_permanent_p = 0.25;
    options.store.quarantine_after = 10000;  // keep the tier in play
    return options;
  };
  ShardRouter router(&model_, copts);

  for (std::size_t i = 0; i < kSessions; ++i) {
    router.Submit(workload[i]);
  }
  router.WaitIdle();
  const ShardId victim = router.ShardOf(3);
  ASSERT_TRUE(router.DrainShard(victim).ok());
  for (std::size_t i = kSessions; i < workload.size(); ++i) {
    router.Submit(workload[i]);
  }
  router.Shutdown();

  ExpectSameReplies(expected, ToReplyMap(router.TakeReplies()));
  EXPECT_GT(router.shard_status(victim).sessions_migrated_out, 0U);

  // The seeds really fired: the fleet observed injected I/O faults.
  std::uint64_t faults = 0;
  for (ShardId s = 0; s < 4; ++s) {
    faults += router.shard_engine(s).store().stats().io_faults();
  }
  EXPECT_GT(faults, 0U);
}

// Backpressure policy: when the ring owner's queue is full, a *new* session
// overflows to the least-loaded shard and pins there; an *existing* session
// sheds instead of moving (its KV is already local).
TEST_F(ClusterTest, TrySubmitOverflowsNewSessionsAndShedsExisting) {
  ClusterOptions copts;
  copts.num_shards = 2;
  copts.engine = DefaultEngineOptions();
  copts.server.num_workers = 1;
  copts.server.max_batch_per_worker = 1;
  copts.server.max_queue_depth = 1;
  ShardRouter router(&model_, copts);
  const std::size_t vocab = model_.config().vocab_size;

  // Pick 6 fresh sessions that all hash to shard 0, so its queue fills and
  // the overflow path must fire while shard 1 still has room.
  std::vector<SessionId> on_zero;
  for (SessionId s = 0; on_zero.size() < 6; ++s) {
    if (router.ShardOf(s) == 0) {
      on_zero.push_back(s);
    }
  }
  std::size_t accepted = 0;
  for (const SessionId s : on_zero) {
    ServeRequest req;
    req.session = s;
    req.input = MakeTokens(10, 4000 + s, vocab);
    req.max_reply_tokens = 24;  // slow turns keep the queues full
    accepted += router.TrySubmit(std::move(req)).has_value() ? 1 : 0;
  }
  const ShardStatus s0 = router.shard_status(0);
  const ShardStatus s1 = router.shard_status(1);
  EXPECT_GT(s1.jobs_overflowed_in, 0U) << "no new session overflowed to shard 1";
  EXPECT_GT(s0.jobs_shed + s1.jobs_shed, 0U) << "burst never shed with queue caps of 1";
  EXPECT_EQ(accepted + s0.jobs_shed + s1.jobs_shed, on_zero.size());

  router.WaitIdle();
  // An accepted overflow pinned its session to shard 1 for good.
  std::size_t pinned_off_ring = 0;
  for (const SessionId s : on_zero) {
    pinned_off_ring += router.ShardOf(s) == 1 ? 1 : 0;
  }
  EXPECT_GT(pinned_off_ring, 0U);

  // An existing session sheds (does not move) when its shard is full: fill
  // shard 0's queue with a long turn, then retry one of its pinned sessions.
  std::optional<SessionId> pinned_zero;
  for (const SessionId s : on_zero) {
    if (router.ShardOf(s) == 0) {
      pinned_zero = s;
      break;
    }
  }
  ASSERT_TRUE(pinned_zero.has_value()) << "every session overflowed off shard 0?";
  const std::uint64_t shed_before = router.shard_status(0).jobs_shed;
  std::size_t retries_shed = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    ServeRequest req;
    req.session = *pinned_zero;
    req.input = MakeTokens(10, 5000 + i, vocab);
    req.max_reply_tokens = 24;
    retries_shed += router.TrySubmit(std::move(req)).has_value() ? 0 : 1;
  }
  EXPECT_GT(retries_shed, 0U) << "8 rapid turns of one session never hit the cap";
  EXPECT_EQ(router.shard_status(0).jobs_shed, shed_before + retries_shed);
  EXPECT_EQ(router.ShardOf(*pinned_zero), 0U) << "existing session moved under load";

  router.Shutdown();
  const auto replies = router.TakeReplies();
  for (const ServeReply& r : replies) {
    EXPECT_TRUE(r.status.ok());
  }
  EXPECT_FALSE(router.TrySubmit(ServeRequest{}).has_value());
}

// Whole-shard failure: a shard whose store lost every configured tier is
// auto-drained as kQuarantined; its sessions resume elsewhere from their
// migrated histories with identical replies.
TEST_F(ClusterTest, QuarantinedShardIsAutoDrainedByPollHealth) {
  const std::size_t kSessions = 10, kTurns = 3;
  const auto workload = BuildWorkload(kSessions, kTurns, model_.config().vocab_size);
  const ReplyMap expected = ReferenceReplies(workload);

  ClusterOptions copts;
  copts.num_shards = 4;
  copts.server.num_workers = 2;
  copts.health_poll_every = 0;  // poll explicitly below
  // Ring owner of session 0, computed the same way the router will.
  ConsistentHashRing ring(copts.vnodes_per_shard);
  for (ShardId s = 0; s < 4; ++s) {
    ring.AddShard(s);
  }
  const ShardId victim = ring.ShardFor(0);

  copts.engine_options_fn = [victim](std::size_t shard) {
    EngineOptions options = DefaultEngineOptions();
    if (shard == victim) {
      // DRAM-only store whose every write fails permanently: the single
      // configured tier quarantines on the first save, after which the
      // shard can cache nothing at all.
      options.store.disk_capacity = 0;
      options.store.dram_fault.write_permanent_p = 1.0;
      options.store.quarantine_after = 1;
    }
    return options;
  };
  ShardRouter router(&model_, copts);

  for (std::size_t i = 0; i < kSessions; ++i) {
    router.Submit(workload[i]);
  }
  router.WaitIdle();
  ASSERT_EQ(router.shard_engine(victim).StoreTierHealth(Tier::kDram),
            TierHealth::kQuarantined);

  EXPECT_EQ(router.PollHealth(), 1U);
  EXPECT_EQ(router.shard_status(victim).health, ShardHealth::kQuarantined);
  EXPECT_EQ(router.PollHealth(), 0U);  // idempotent: already retired

  for (std::size_t i = kSessions; i < workload.size(); ++i) {
    router.Submit(workload[i]);
  }
  router.Shutdown();
  ExpectSameReplies(expected, ToReplyMap(router.TakeReplies()));
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_NE(router.ShardOf(static_cast<SessionId>(s)), victim);
  }
}

// A migration that fails outright (injected whole-migration fault) must not
// leave the session's pin pointing at the retired shard: the drain sweeps
// it, and the session keeps being served — fresh via the ring (clean-miss
// recompute), never routed to the shut-down loop.
TEST_F(ClusterTest, FailedMigrationSweepsPinAndSessionKeepsBeingServed) {
  const std::size_t kSessions = 12;
  const std::size_t vocab = model_.config().vocab_size;

  ClusterOptions copts;
  copts.num_shards = 4;
  copts.engine = DefaultEngineOptions();
  copts.server.num_workers = 2;
  copts.migration_fault_fn = [](SessionId, ShardId) { return true; };  // fail every move
  ShardRouter router(&model_, copts);

  for (std::size_t s = 0; s < kSessions; ++s) {
    ServeRequest req;
    req.session = static_cast<SessionId>(s);
    req.input = MakeTokens(8, 9000 + s, vocab);
    req.max_reply_tokens = 3;
    router.Submit(std::move(req));
  }
  router.WaitIdle();

  const ShardId victim = router.ShardOf(0);
  std::vector<SessionId> on_victim;
  for (std::size_t s = 0; s < kSessions; ++s) {
    if (router.ShardOf(static_cast<SessionId>(s)) == victim) {
      on_victim.push_back(static_cast<SessionId>(s));
    }
  }
  ASSERT_FALSE(on_victim.empty());

  ASSERT_TRUE(router.DrainShard(victim).ok());
  const ShardStatus st = router.shard_status(victim);
  EXPECT_EQ(st.health, ShardHealth::kDrained);
  EXPECT_EQ(st.sessions_migrated_out, 0U) << "injected faults should fail every move";

  // Every pin left the retired shard even though nothing migrated...
  for (const SessionId s : on_victim) {
    EXPECT_NE(router.ShardOf(s), victim) << "session " << s << " pin survived the sweep";
  }
  // ...and the sessions are still servable: Submit must route them to a
  // live shard (a stale pin would abort on the victim's shut-down loop).
  for (const SessionId s : on_victim) {
    ServeRequest req;
    req.session = s;
    req.input = MakeTokens(8, 9500 + s, vocab);
    req.max_reply_tokens = 3;
    router.Submit(std::move(req));
  }
  router.Shutdown();
  for (const ServeReply& r : router.TakeReplies()) {
    EXPECT_TRUE(r.status.ok()) << "job " << r.job << ": " << r.status;
  }
}

// TrySubmit while the pinned shard drains: parked intake is bounded by
// max_queue_depth — overflow sheds instead of growing parked_ without limit.
// The migration fault hook doubles as a sync point holding the drain open.
TEST_F(ClusterTest, TrySubmitBoundsParkedBacklogDuringDrain) {
  const std::size_t vocab = model_.config().vocab_size;
  std::atomic<bool> release{false};

  ClusterOptions copts;
  copts.num_shards = 2;
  copts.engine = DefaultEngineOptions();
  copts.server.num_workers = 1;
  copts.server.max_queue_depth = 2;
  copts.migration_fault_fn = [&release](SessionId, ShardId) {
    while (!release.load()) {
      std::this_thread::yield();  // park the drain mid-migration
    }
    return false;  // then migrate normally
  };
  ShardRouter router(&model_, copts);

  // One served turn pins the session (and gives the drain a live session to
  // block on inside the fault hook).
  SessionId session = 0;
  ServeRequest first;
  first.session = session;
  first.input = MakeTokens(8, 11000, vocab);
  first.max_reply_tokens = 2;
  router.Submit(std::move(first));
  router.WaitIdle();
  const ShardId victim = router.ShardOf(session);

  std::thread drainer([&] { EXPECT_TRUE(router.DrainShard(victim).ok()); });
  while (router.shard_status(victim).health != ShardHealth::kDraining) {
    std::this_thread::yield();
  }

  // The drain is wedged in the hook: every TrySubmit for the pinned session
  // parks — until the cap (2), after which the rest shed.
  const std::size_t kAttempts = 6;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < kAttempts; ++i) {
    ServeRequest req;
    req.session = session;
    req.input = MakeTokens(8, 12000 + i, vocab);
    req.max_reply_tokens = 2;
    accepted += router.TrySubmit(std::move(req)).has_value() ? 1 : 0;
  }
  EXPECT_EQ(accepted, copts.server.max_queue_depth);
  EXPECT_EQ(router.shard_status(victim).jobs_shed, kAttempts - accepted);

  release.store(true);
  drainer.join();
  router.Shutdown();

  // Everything accepted (1 pre-drain + the parked 2) was served.
  const auto replies = router.TakeReplies();
  EXPECT_EQ(replies.size(), 1 + accepted);
  for (const ServeReply& r : replies) {
    EXPECT_TRUE(r.status.ok()) << "job " << r.job << ": " << r.status;
  }
}

// Router-level EndSession retires the session everywhere: engine state on
// its pinned shard plus the router's pin and turn counter (the next turn
// starts over at turn_index 1).
TEST_F(ClusterTest, EndSessionErasesPinTurnCounterAndEngineState) {
  ClusterOptions copts;
  copts.num_shards = 2;
  copts.engine = DefaultEngineOptions();
  ShardRouter router(&model_, copts);
  const std::size_t vocab = model_.config().vocab_size;
  const SessionId session = 5;

  ServeRequest req;
  req.session = session;
  req.input = MakeTokens(8, 13000, vocab);
  req.max_reply_tokens = 2;
  router.Submit(std::move(req));
  router.WaitIdle();

  const ShardId pin = router.ShardOf(session);
  const auto resident = router.shard_engine(pin).LiveSessions();
  ASSERT_NE(std::find(resident.begin(), resident.end(), session), resident.end());

  router.EndSession(session);
  router.EndSession(static_cast<SessionId>(999));  // unknown: no-op

  const auto after = router.shard_engine(pin).LiveSessions();
  EXPECT_EQ(std::find(after.begin(), after.end(), session), after.end())
      << "engine state survived EndSession";
  EXPECT_EQ(router.shard_status(pin).sessions_resident, 0U);

  // The same id starts a fresh session: turn counter reset to 1.
  ServeRequest again;
  again.session = session;
  again.input = MakeTokens(8, 14000, vocab);
  again.max_reply_tokens = 2;
  router.Submit(std::move(again));
  router.Shutdown();
  const auto replies = router.TakeReplies();
  ASSERT_EQ(replies.size(), 2U);
  EXPECT_EQ(replies[0].turn_index, 1U);
  EXPECT_EQ(replies[1].turn_index, 1U) << "turn counter not reset by EndSession";
}

TEST_F(ClusterTest, RepeatedShutdownIsIdempotentAndRepliesComeInJobOrder) {
  ClusterOptions copts;
  copts.num_shards = 2;
  copts.engine = DefaultEngineOptions();
  ShardRouter router(&model_, copts);
  const std::size_t vocab = model_.config().vocab_size;
  for (std::size_t i = 0; i < 6; ++i) {
    ServeRequest req;
    req.session = static_cast<SessionId>(i);
    req.input = MakeTokens(5, 7000 + i, vocab);
    req.max_reply_tokens = 2;
    router.Submit(std::move(req));
  }
  router.Shutdown();
  router.Shutdown();  // no-op, no deadlock
  const auto replies = router.TakeReplies();
  ASSERT_EQ(replies.size(), 6U);
  for (std::size_t i = 1; i < replies.size(); ++i) {
    EXPECT_LT(replies[i - 1].job, replies[i].job) << "replies not in global JobId order";
  }
  EXPECT_TRUE(router.TakeReplies().empty());  // cleared by the first take
}

}  // namespace
}  // namespace ca
