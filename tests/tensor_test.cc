// Tests for the tensor library and its kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/tensor/arena.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace ca {
namespace {

TEST(TensorTest, ZerosShapeAndContents) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2U);
  EXPECT_EQ(t.dim(0), 2U);
  EXPECT_EQ(t.dim(1), 3U);
  EXPECT_EQ(t.numel(), 6U);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, IndexingRoundTrips) {
  Tensor t({3, 4});
  t.at2(2, 3) = 5.0f;
  EXPECT_EQ(t.at2(2, 3), 5.0f);
  EXPECT_EQ(t[2 * 4 + 3], 5.0f);

  Tensor u({2, 3, 4});
  u.at3(1, 2, 3) = -1.0f;
  EXPECT_EQ(u.at3(1, 2, 3), -1.0f);
  EXPECT_EQ(u[(1 * 3 + 2) * 4 + 3], -1.0f);
}

TEST(TensorTest, RowPointer) {
  Tensor t({2, 3});
  t.row(1)[2] = 7.0f;
  EXPECT_EQ(t.at2(1, 2), 7.0f);
}

TEST(TensorTest, ViewSharesStorage) {
  float buf[6] = {1, 2, 3, 4, 5, 6};
  Tensor v = Tensor::View(buf, {2, 3});
  EXPECT_EQ(v.at2(1, 0), 4.0f);
  v.at2(0, 0) = 9.0f;
  EXPECT_EQ(buf[0], 9.0f);
}

TEST(TensorTest, CloneIsIndependent) {
  Tensor t({2, 2});
  t.Fill(1.0f);
  Tensor c = t.Clone();
  c.Fill(2.0f);
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_EQ(c[0], 2.0f);
}

TEST(TensorTest, RandnIsDeterministic) {
  Rng a(1);
  Rng b(1);
  Tensor x = Tensor::Randn({4, 4}, a);
  Tensor y = Tensor::Randn({4, 4}, b);
  EXPECT_TRUE(AllClose(x, y, 0.0f, 0.0f));
}

TEST(TensorTest, ShapeString) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ShapeString(), "[2, 3, 4]");
}

TEST(TensorDeathTest, OutOfBoundsAborts) {
  Tensor t({2, 2});
  EXPECT_DEATH(t[4], "CA_CHECK failed");
  EXPECT_DEATH((void)t.row(2), "CA_CHECK failed");
}

TEST(OpsTest, MatMulSmallKnown) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  for (int i = 0; i < 6; ++i) {
    a[i] = static_cast<float>(i + 1);
    b[i] = static_cast<float>(i + 7);
  }
  Tensor out({2, 2});
  MatMul(a, b, out);
  EXPECT_FLOAT_EQ(out.at2(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out.at2(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(out.at2(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(out.at2(1, 1), 154.0f);
}

TEST(OpsTest, MatMulTransposedBMatchesMatMul) {
  Rng rng(4);
  Tensor a = Tensor::Randn({5, 7}, rng);
  Tensor b = Tensor::Randn({7, 6}, rng);
  // bt[n,k] = b[k,n]^T
  Tensor bt({6, 7});
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      bt.at2(j, i) = b.at2(i, j);
    }
  }
  Tensor ref({5, 6});
  Tensor out({5, 6});
  MatMul(a, b, ref);
  MatMulTransposedB(a, bt, out);
  EXPECT_TRUE(AllClose(out, ref, 1e-5f, 1e-6f));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Tensor t = Tensor::Randn({4, 16}, rng, 3.0f);
  SoftmaxRows(t);
  for (std::size_t r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 16; ++c) {
      const float v = t.at2(r, c);
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, SoftmaxIsShiftInvariant) {
  Tensor a({1, 4});
  Tensor b({1, 4});
  for (int i = 0; i < 4; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(i) + 100.0f;  // stability: huge shift
  }
  SoftmaxRows(a);
  SoftmaxRows(b);
  EXPECT_TRUE(AllClose(a, b, 1e-5f, 1e-6f));
}

TEST(OpsTest, RmsNormUnitWeightNormalises) {
  Tensor x({1, 4});
  x[0] = 1.0f;
  x[1] = 2.0f;
  x[2] = 3.0f;
  x[3] = 4.0f;
  std::vector<float> w(4, 1.0f);
  Tensor out({1, 4});
  RmsNormRows(x, w, out, 0.0f);
  const float rms = std::sqrt((1.0f + 4.0f + 9.0f + 16.0f) / 4.0f);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(out[i], x[i] / rms, 1e-5f);
  }
}

TEST(OpsTest, SiluKnownValues) {
  Tensor t({1, 3});
  t[0] = 0.0f;
  t[1] = 10.0f;
  t[2] = -10.0f;
  SiluInPlace(t);
  EXPECT_NEAR(t[0], 0.0f, 1e-6f);
  EXPECT_NEAR(t[1], 10.0f, 1e-3f);   // silu(10) ~ 10
  EXPECT_NEAR(t[2], 0.0f, 1e-3f);    // silu(-10) ~ 0
}

TEST(OpsTest, ElementwiseAddMul) {
  Tensor a({1, 3});
  Tensor b({1, 3});
  for (int i = 0; i < 3; ++i) {
    a[i] = static_cast<float>(i + 1);
    b[i] = 2.0f;
  }
  Tensor out({1, 3});
  Add(a, b, out);
  EXPECT_FLOAT_EQ(out[2], 5.0f);
  AddInPlace(a, b);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  MulInPlace(a, b);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
}

TEST(OpsTest, DotAndAxpy) {
  const std::vector<float> x = {1.0f, 2.0f, 3.0f};
  std::vector<float> y = {4.0f, 5.0f, 6.0f};
  EXPECT_FLOAT_EQ(Dot(x, y), 32.0f);
  Axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[2], 12.0f);
}

TEST(OpsTest, LogSumExpStable) {
  const std::vector<float> row = {1000.0f, 1000.0f};
  EXPECT_NEAR(LogSumExp(row), 1000.0f + std::log(2.0f), 1e-3f);
  const std::vector<float> row2 = {0.0f};
  EXPECT_NEAR(LogSumExp(row2), 0.0f, 1e-6f);
}

TEST(OpsTest, MaxAbsDiff) {
  Tensor a({1, 3});
  Tensor b({1, 3});
  a[1] = 2.0f;
  b[1] = -1.0f;
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 3.0f);
}

// Property sweep: MatMulTransposedB against a plain triple loop, across
// shapes.
class MatMulShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, AgreesWithNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10000 + k * 100 + n));
  Tensor a = Tensor::Randn({static_cast<std::size_t>(m), static_cast<std::size_t>(k)}, rng);
  Tensor bt = Tensor::Randn({static_cast<std::size_t>(n), static_cast<std::size_t>(k)}, rng);
  Tensor out({static_cast<std::size_t>(m), static_cast<std::size_t>(n)});
  MatMulTransposedB(a, bt, out);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        acc += a.at2(i, kk) * bt.at2(j, kk);
      }
      EXPECT_NEAR(out.at2(i, j), acc, 1e-4f) << "at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 8, 3),
                                           std::make_tuple(5, 3, 7), std::make_tuple(16, 32, 8),
                                           std::make_tuple(3, 64, 64)));

// --- Parallel kernels: bitwise-identical to serial ------------------------
//
// The determinism contract (DESIGN.md §9): each output row is produced by
// exactly one ParallelFor chunk with a fixed, shape-only reduction order, so
// a pooled run must match the serial run bit for bit — including odd shapes
// (1x1, rows < grain, dims that are not a multiple of the 4-wide tile).

class ParallelMatMulShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ParallelMatMulShapes, MatMulBitwiseMatchesSerial) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7919 + k * 131 + n));
  Tensor a = Tensor::Randn({static_cast<std::size_t>(m), static_cast<std::size_t>(k)}, rng);
  Tensor b = Tensor::Randn({static_cast<std::size_t>(k), static_cast<std::size_t>(n)}, rng);
  Tensor serial({static_cast<std::size_t>(m), static_cast<std::size_t>(n)});
  Tensor parallel({static_cast<std::size_t>(m), static_cast<std::size_t>(n)});
  MatMul(a, b, serial);
  ThreadPool pool(4);
  MatMul(a, b, parallel, &pool);
  EXPECT_EQ(std::memcmp(serial.data(), parallel.data(), serial.numel() * sizeof(float)), 0);
}

TEST_P(ParallelMatMulShapes, MatMulTransposedBBitwiseMatchesSerial) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 104729 + k * 433 + n));
  Tensor a = Tensor::Randn({static_cast<std::size_t>(m), static_cast<std::size_t>(k)}, rng);
  Tensor bt = Tensor::Randn({static_cast<std::size_t>(n), static_cast<std::size_t>(k)}, rng);
  Tensor serial({static_cast<std::size_t>(m), static_cast<std::size_t>(n)});
  Tensor parallel({static_cast<std::size_t>(m), static_cast<std::size_t>(n)});
  MatMulTransposedB(a, bt, serial);
  ThreadPool pool(4);
  MatMulTransposedB(a, bt, parallel, &pool);
  EXPECT_EQ(std::memcmp(serial.data(), parallel.data(), serial.numel() * sizeof(float)), 0);
}

INSTANTIATE_TEST_SUITE_P(OddShapes, ParallelMatMulShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1),    // degenerate
                                           std::make_tuple(2, 8, 4),    // m < default grain
                                           std::make_tuple(7, 9, 5),    // nothing divides 4
                                           std::make_tuple(13, 31, 17),  // prime everything
                                           std::make_tuple(64, 33, 66)));

// --- ScratchArena ---------------------------------------------------------

TEST(ScratchArenaTest, Alloc2dShapesAndWritable) {
  ScratchArena arena;
  Tensor t = arena.Alloc2d(3, 5);
  EXPECT_EQ(t.dim(0), 3U);
  EXPECT_EQ(t.dim(1), 5U);
  t.Fill(2.5f);
  EXPECT_EQ(t.at2(2, 4), 2.5f);
}

TEST(ScratchArenaTest, PointersStableAcrossGrowth) {
  ScratchArena arena;
  Tensor first = arena.Alloc2d(4, 4);
  first.Fill(7.0f);
  float* base = first.data();
  // Force several slab growths; earlier allocations must not move.
  for (int i = 0; i < 8; ++i) {
    (void)arena.AllocSpan(1 << (10 + i));
  }
  EXPECT_EQ(first.data(), base);
  EXPECT_EQ(first.at2(3, 3), 7.0f);
}

TEST(ScratchArenaTest, ResetReusesCapacityWithoutGrowth) {
  ScratchArena arena;
  (void)arena.AllocSpan(10000);
  arena.Reset();
  const std::size_t cap = arena.capacity();
  EXPECT_GE(cap, 10000U);
  // Everything fits into the coalesced slab: capacity must not grow again.
  (void)arena.AllocSpan(4000);
  (void)arena.AllocSpan(4000);
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(ScratchArenaTest, SpansDoNotOverlap) {
  ScratchArena arena;
  auto a = arena.AllocSpan(100);
  auto b = arena.AllocSpan(100);
  std::fill(a.begin(), a.end(), 1.0f);
  std::fill(b.begin(), b.end(), 2.0f);
  for (float v : a) {
    EXPECT_EQ(v, 1.0f);
  }
}

}  // namespace
}  // namespace ca
