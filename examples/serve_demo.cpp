// Serving-runtime walkthrough (DESIGN.md §12): run a ShareGPT-style
// multi-turn workload through the multi-threaded ServingLoop — JobQueue →
// per-worker ContinuousBatchers → CachedAttentionEngine — with the
// background hint/prefetch thread promoting disk-resident KV caches while
// workers serve, then print throughput, cache hit rates and queue-wait
// percentiles.
//
//   ./build/examples/serve_demo [--sessions N] [--workers N] [--batch N]
//                               [--no-prefetch] [--shared-prefix TOKENS]
//                               [--trace PATH]
//
// With --shared-prefix N, every session opens on the same N-token system
// prompt and the store runs with cross-session prefix sharing (DESIGN.md
// §17); the report gains a sharing section with the dedup factor, prefix hit
// rate and chunk counts.
//
// With --trace, open the exported file in https://ui.perfetto.dev: the
// serve-worker-* tracks show serve.batch/serve.turn slices running
// concurrently, the serve-refresh track shows store.promote I/O overlapping
// them (§3.3.1), and the kv-save-stream track shows async saves trailing
// each turn (§3.2.2).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/cached_attention.h"
#include "src/model/transformer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/serving_loop.h"
#include "src/workload/sharegpt.h"

namespace {

std::vector<ca::TokenId> RandomTokens(ca::Rng& rng, std::size_t n, std::size_t vocab) {
  std::vector<ca::TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<ca::TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

void PrintHistogram(const ca::MetricsSnapshot& snapshot, const char* key,
                    const char* label, double scale, const char* unit) {
  for (const auto& h : snapshot.histograms) {
    if (h.key == key) {
      // A histogram can be registered but empty (e.g. prefetch disabled, or a
      // zero-turn run): percentiles of nothing are garbage, so print n/a.
      if (h.view.count == 0) {
        std::printf("  %-22s p50      n/a   p95      n/a   p99      n/a   (n=0)\n",
                    label);
        return;
      }
      std::printf("  %-22s p50 %8.3f%s   p95 %8.3f%s   p99 %8.3f%s   (n=%zu)\n",
                  label, h.view.p50 * scale, unit, h.view.p95 * scale, unit,
                  h.view.p99 * scale, unit, h.view.count);
      return;
    }
  }
  std::printf("  %-22s (no samples)\n", label);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ca;

  std::size_t num_sessions = 16;
  std::size_t shared_prefix = 0;
  ServerOptions sopts;
  sopts.refresh_interval_us = 100;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      num_sessions = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      sopts.num_workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      sopts.max_batch_per_worker = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--no-prefetch") == 0) {
      sopts.prefetch = false;
    } else if (std::strcmp(argv[i], "--shared-prefix") == 0 && i + 1 < argc) {
      shared_prefix = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions N] [--workers N] [--batch N] "
                   "[--no-prefetch] [--shared-prefix TOKENS] [--trace PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // DRAM holds only a few sessions (with a §3.3.1 fetch buffer reserved) so
  // KV caches migrate between tiers and the prefetcher has real work.
  ModelConfig mconfig = ModelConfig::Mini().WithThreads(2);
  if (shared_prefix > 0) {
    // Leave window headroom for the common prompt: engine-side truncation
    // taints a cache (DESIGN.md §17) and would push sessions back to private
    // records, hiding exactly the dedup this mode demonstrates.
    mconfig.context_window = std::max(mconfig.context_window, shared_prefix + 512);
  }
  Transformer model(mconfig, 7);
  EngineOptions eopts;
  eopts.store.block_bytes = KiB(32);
  eopts.store.dram_capacity = KiB(512);
  eopts.store.dram_buffer = KiB(128);
  eopts.store.disk_capacity = MiB(128);
  eopts.async_save = true;
  if (shared_prefix > 0) {
    eopts.store.share_prefixes = true;
    // One 32 KiB block per chunk at Mini's 1 KiB/token, so the dedup factor
    // reported below is not diluted by block-rounding waste.
    eopts.store.share_chunk_tokens = 32;
  }
  CachedAttentionEngine engine(&model, eopts);
  const std::size_t vocab = model.config().vocab_size;

  if (!trace_path.empty()) {
    Tracer::Get().Enable();
  }
  Tracer::Get().SetThreadName("submit");

  // ShareGPT-style sessions (§2.3 marginals), token counts clamped to the
  // Mini model's window so a single turn always fits. With --shared-prefix,
  // every session opens on the same system prompt so the store's prefix index
  // (DESIGN.md §17) can dedup the common KV across sessions.
  ShareGptGenerator generator(ShareGptConfig{}, /*seed=*/42);
  const auto traces = generator.Generate(num_sessions);
  const std::vector<TokenId> prompt = SharedPrefixPrompt(shared_prefix, vocab, /*seed=*/1234);
  Rng rng(7);

  const std::uint64_t t0 = TraceNowNs();
  ServingLoop loop(&engine, sopts);
  std::size_t submitted = 0;
  std::size_t max_turns = 0;
  for (const SessionTrace& trace : traces) {
    max_turns = std::max(max_turns, trace.turns.size());
  }
  // Wave-interleaved submission (turn 1 of every session, then turn 2, ...):
  // the per-session FIFO keeps each conversation ordered while waves from
  // different sessions fill the workers.
  for (std::size_t t = 0; t < max_turns; ++t) {
    for (const SessionTrace& trace : traces) {
      if (t >= trace.turns.size()) {
        continue;
      }
      ServeRequest req;
      req.session = trace.id;
      req.input = RandomTokens(
          rng, std::clamp<std::size_t>(trace.turns[t].q_tokens, 4, 48), vocab);
      if (t == 0 && !prompt.empty()) {
        req.input.insert(req.input.begin(), prompt.begin(), prompt.end());
      }
      req.max_reply_tokens = std::clamp<std::size_t>(trace.turns[t].a_tokens, 2, 24);
      loop.Submit(std::move(req));
      ++submitted;
    }
  }
  loop.Shutdown();  // graceful drain: serves everything accepted
  const double wall_s = static_cast<double>(TraceNowNs() - t0) * 1e-9;
  if (!trace_path.empty()) {
    Tracer::Get().Disable();
  }

  const auto replies = loop.TakeReplies();
  std::size_t ok = 0;
  std::uint64_t reply_tokens = 0;
  for (const ServeReply& r : replies) {
    ok += r.status.ok() ? 1 : 0;
    reply_tokens += r.turn.reply.size();
  }

  const EngineStats estats = engine.stats();
  const StoreStats& sstats = engine.store().stats();  // quiescent after Shutdown
  engine.PublishMetrics();
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();

  std::printf("=== serve_demo: %zu sessions, %zu turns, %zu workers ===\n",
              num_sessions, submitted, sopts.num_workers);
  std::printf("throughput\n");
  std::printf("  %-22s %8.2f turns/s (%zu/%zu ok in %.2fs)\n", "served",
              static_cast<double>(ok) / wall_s, ok, submitted, wall_s);
  std::printf("  %-22s %8.0f tok/s decoded, %8.0f tok/s prefilled\n", "tokens",
              static_cast<double>(reply_tokens) / wall_s,
              static_cast<double>(estats.computed_tokens) / wall_s);
  std::printf("cache\n");
  const double lookups = std::max<double>(1.0, static_cast<double>(sstats.lookups));
  std::printf("  %-22s %5.1f%% dram, %5.1f%% disk, %5.1f%% miss (%llu lookups)\n",
              "hit rate", 100.0 * static_cast<double>(sstats.dram_hits) / lookups,
              100.0 * static_cast<double>(sstats.disk_hits) / lookups,
              100.0 * static_cast<double>(sstats.misses) / lookups,
              static_cast<unsigned long long>(sstats.lookups));
  std::printf("  %-22s %5.1f%% of prompt tokens reused, %llu truncations, "
              "%llu promotions\n",
              "reuse", 100.0 * estats.reuse_fraction(),
              static_cast<unsigned long long>(estats.truncations),
              static_cast<unsigned long long>(sstats.promotions));
  if (shared_prefix > 0) {
    // Hit-rate and memory wins from cross-session prefix sharing (§17):
    // logical = what per-session storage would hold (sum of every session's
    // payload), stored = blocks actually occupied after dedup.
    std::uint64_t logical = 0;
    for (const SessionTrace& trace : traces) {
      if (const auto info = engine.store().GetInfo(trace.id)) {
        logical += info->payload_bytes;
      }
    }
    const std::uint64_t stored =
        engine.store().UsedBytes(Tier::kDram) + engine.store().UsedBytes(Tier::kDisk);
    const double mib = 1.0 / static_cast<double>(MiB(1));
    std::printf("sharing (--shared-prefix %zu)\n", shared_prefix);
    std::printf("  %-22s %6.2f MiB logical, %6.2f MiB stored (%.1fx dedup)\n",
                "kv footprint", static_cast<double>(logical) * mib,
                static_cast<double>(stored) * mib,
                stored == 0 ? 0.0
                            : static_cast<double>(logical) / static_cast<double>(stored));
    std::printf("  %-22s %5.1f%% of %llu chunk probes matched an existing chunk\n",
                "prefix hit rate", 100.0 * sstats.prefix_hit_rate(),
                static_cast<unsigned long long>(sstats.prefix_lookups));
    std::printf("  %-22s %zu live (%llu created, %llu freed), %.2f MiB never written\n",
                "chunks", engine.store().ChunkCount(),
                static_cast<unsigned long long>(sstats.chunks_created),
                static_cast<unsigned long long>(sstats.chunks_freed),
                static_cast<double>(sstats.shared_bytes_saved) * mib);
  }
  std::printf("latency\n");
  PrintHistogram(snapshot, "sched.queue_wait_seconds", "queue wait", 1e3, "ms");
  PrintHistogram(snapshot, "serve.turn_seconds", "turn latency", 1e3, "ms");
  PrintHistogram(snapshot, "engine.prefill_seconds", "prefill (TTFT)", 1e3, "ms");

  if (!trace_path.empty()) {
    const Status written = Tracer::Get().ExportChromeJsonToFile(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("trace: %zu events -> %s (open in https://ui.perfetto.dev)\n",
                Tracer::Get().event_count(), trace_path.c_str());
  }
  return ok == submitted ? 0 : 1;
}
