// Sharded cluster serving walkthrough (DESIGN.md §16): a ShardRouter fronts
// N in-process shards — each its own CachedAttentionEngine + AttentionStore +
// ServingLoop — with consistent-hash session routing, per-shard backpressure
// (new sessions overflow to the least-loaded shard, existing sessions shed)
// and live migration: halfway through the workload one shard is drained and
// every session it holds moves, KV payload and history, to its new ring
// owner while traffic keeps flowing.
//
//   ./build/examples/cluster_demo [--sessions N] [--shards N] [--workers N]
//                                 [--queue-depth N] [--drain SHARD]
//
// The report shows per-shard throughput, hit rate, shed/overflow counts and
// migration counts — the cluster.* metrics, read back from the registry.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/cluster/shard_router.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/model/transformer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/workload/sharegpt.h"

namespace {

std::vector<ca::TokenId> RandomTokens(ca::Rng& rng, std::size_t n, std::size_t vocab) {
  std::vector<ca::TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<ca::TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

void PrintHistogram(const ca::MetricsSnapshot& snapshot, const char* key,
                    const char* label, double scale, const char* unit) {
  for (const auto& h : snapshot.histograms) {
    if (h.key == key) {
      // Registered-but-empty histograms (a fully shed workload, a zero-turn
      // run) have no meaningful percentiles: print n/a, not garbage.
      if (h.view.count == 0) {
        std::printf("  %-22s p50      n/a   p95      n/a   p99      n/a   (n=0)\n",
                    label);
        return;
      }
      std::printf("  %-22s p50 %8.3f%s   p95 %8.3f%s   p99 %8.3f%s   (n=%zu)\n",
                  label, h.view.p50 * scale, unit, h.view.p95 * scale, unit,
                  h.view.p99 * scale, unit, h.view.count);
      return;
    }
  }
  std::printf("  %-22s (no samples)\n", label);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ca;

  std::size_t num_sessions = 24;
  std::int64_t drain_shard = 1;
  ClusterOptions copts;
  copts.num_shards = 4;
  copts.server.num_workers = 2;
  copts.server.max_queue_depth = 8;  // per-shard backpressure
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      num_sessions = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      copts.num_shards = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      copts.server.num_workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--queue-depth") == 0 && i + 1 < argc) {
      copts.server.max_queue_depth = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--drain") == 0 && i + 1 < argc) {
      drain_shard = std::atoi(argv[++i]);  // negative disables the drain
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions N] [--shards N] [--workers N] "
                   "[--queue-depth N] [--drain SHARD]\n",
                   argv[0]);
      return 2;
    }
  }

  Transformer model(ModelConfig::Mini().WithThreads(2), 7);
  // Small per-shard DRAM so KV caches really live in the tier hierarchy and
  // migration moves disk-resident payloads, not just DRAM copies.
  copts.engine.store.block_bytes = KiB(32);
  copts.engine.store.dram_capacity = KiB(512);
  copts.engine.store.disk_capacity = MiB(128);
  const std::size_t vocab = model.config().vocab_size;

  ShareGptGenerator generator(ShareGptConfig{}, /*seed=*/42);
  const auto traces = generator.Generate(num_sessions);
  Rng rng(7);
  std::size_t max_turns = 0;
  for (const SessionTrace& trace : traces) {
    max_turns = std::max(max_turns, trace.turns.size());
  }

  const std::uint64_t t0 = TraceNowNs();
  ShardRouter router(&model, copts);
  std::size_t submitted = 0;
  std::size_t shed = 0;
  double drain_s = -1.0;
  // Wave-interleaved turns through the backpressure intake; halfway through
  // the waves, drain one shard under this live traffic.
  for (std::size_t t = 0; t < max_turns; ++t) {
    if (drain_shard >= 0 && t == max_turns / 2) {
      const std::uint64_t d0 = TraceNowNs();
      const Status drained = router.DrainShard(static_cast<ShardId>(drain_shard));
      drain_s = static_cast<double>(TraceNowNs() - d0) * 1e-9;
      if (!drained.ok()) {
        std::fprintf(stderr, "drain failed: %s\n", drained.ToString().c_str());
        return 1;
      }
    }
    for (const SessionTrace& trace : traces) {
      if (t >= trace.turns.size()) {
        continue;
      }
      ServeRequest req;
      req.session = trace.id;
      req.input = RandomTokens(
          rng, std::clamp<std::size_t>(trace.turns[t].q_tokens, 4, 48), vocab);
      req.max_reply_tokens = std::clamp<std::size_t>(trace.turns[t].a_tokens, 2, 24);
      if (router.TrySubmit(std::move(req)).has_value()) {
        ++submitted;
      } else {
        ++shed;  // backpressure: this turn is rejected, the session goes on
      }
    }
    router.WaitIdle();  // wave barrier keeps per-session turn order simple
  }
  router.Shutdown();
  const double wall_s = static_cast<double>(TraceNowNs() - t0) * 1e-9;

  const auto replies = router.TakeReplies();
  std::size_t ok = 0;
  for (const ServeReply& r : replies) {
    ok += r.status.ok() ? 1 : 0;
  }
  router.PublishMetrics();

  std::printf("=== cluster_demo: %zu sessions over %zu shards, %zu workers each ===\n",
              num_sessions, copts.num_shards, copts.server.num_workers);
  std::printf("cluster: %zu/%zu turns served (%.2f turns/s), %zu shed at intake",
              ok, submitted + shed, static_cast<double>(ok) / wall_s, shed);
  if (drain_s >= 0.0) {
    std::printf(", shard %lld drained in %.3fs", static_cast<long long>(drain_shard),
                drain_s);
  }
  std::printf("\n\n%-6s %-12s %9s %9s %7s %9s %9s %11s\n", "shard", "health", "routed",
              "overflow", "shed", "mig.out", "mig.in", "hit-rate");
  std::uint64_t migrations = 0;
  for (ShardId s = 0; s < copts.num_shards; ++s) {
    const ShardStatus st = router.shard_status(s);
    const StoreStats& stats = router.shard_engine(s).store().stats();
    std::printf("%-6u %-12s %9llu %9llu %7llu %9llu %9llu %10.1f%%\n", s,
                std::string(ShardHealthName(st.health)).c_str(),
                static_cast<unsigned long long>(st.jobs_routed),
                static_cast<unsigned long long>(st.jobs_overflowed_in),
                static_cast<unsigned long long>(st.jobs_shed),
                static_cast<unsigned long long>(st.sessions_migrated_out),
                static_cast<unsigned long long>(st.sessions_migrated_in),
                100.0 * stats.hit_rate());
    migrations += st.sessions_migrated_out;
  }
  std::printf("\nmigrations: %llu sessions moved, zero accepted turns lost\n",
              static_cast<unsigned long long>(migrations));

  // Cluster-wide latency percentiles: every shard's workers feed the global
  // registry, so one snapshot covers them all.
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::printf("\nlatency (all shards)\n");
  PrintHistogram(snapshot, "sched.queue_wait_seconds", "queue wait", 1e3, "ms");
  PrintHistogram(snapshot, "serve.turn_seconds", "turn latency", 1e3, "ms");
  PrintHistogram(snapshot, "engine.prefill_seconds", "prefill (TTFT)", 1e3, "ms");
  return ok == submitted ? 0 : 1;
}
