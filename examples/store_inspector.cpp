// AttentionStore walkthrough: drive the hierarchical KV cache store
// directly and watch placement, demotion, scheduler-aware eviction and
// prefetch planning.
//
//   ./build/examples/store_inspector
#include <cstdio>

#include "src/common/check.h"
#include "src/store/attention_store.h"
#include "src/store/prefetcher.h"

namespace {

void Dump(const ca::AttentionStore& store) {
  using namespace ca;
  for (const Tier tier : {Tier::kDram, Tier::kDisk}) {
    std::printf("  %-4s %8s / %-8s :", std::string(TierName(tier)).c_str(),
                FormatBytes(store.UsedBytes(tier)).c_str(),
                FormatBytes(store.CapacityBytes(tier)).c_str());
    for (const SessionId s : store.SessionsInTier(tier)) {
      std::printf(" s%llu", static_cast<unsigned long long>(s));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace ca;

  // A deliberately tiny hierarchy: 3 DRAM blocks over 6 disk blocks.
  StoreConfig config;
  config.dram_capacity = MiB(12);
  config.disk_capacity = MiB(24);
  config.block_bytes = MiB(4);
  config.eviction_policy = "scheduler-aware";
  AttentionStore store(config);
  const SchedulerHints no_hints;

  std::printf("1. Three sessions' KV caches fill DRAM:\n");
  for (SessionId s = 1; s <= 3; ++s) {
    CA_CHECK_OK(store.Put(s, MiB(4), 1000, {}, static_cast<SimTime>(s), no_hints));
  }
  Dump(store);

  std::printf("\n2. A fourth session arrives; the LRU victim (s1) is demoted to disk:\n");
  CA_CHECK_OK(store.Put(4, MiB(4), 1000, {}, 4, no_hints));
  Dump(store);

  std::printf("\n3. Same situation, but the job queue says s2 is needed next, so the\n"
              "   scheduler-aware policy demotes s3 instead (look-ahead exemption):\n");
  SchedulerHints hints;
  hints.next_use_index[2] = 0;  // s2's next job is at the queue head
  hints.next_use_index[4] = 1;
  hints.next_use_index[5] = 2;
  CA_CHECK_OK(store.Put(5, MiB(4), 1000, {}, 5, hints));
  Dump(store);

  std::printf("\n4. The prefetcher plans disk->DRAM fetches for upcoming jobs\n"
              "   (look-ahead window L_pw = free DRAM / avg session KV):\n");
  Prefetcher prefetcher(&store);
  store.Remove(5);  // make a little room so the window is non-empty
  const std::vector<SessionId> upcoming = {1, 3, 2};
  const PrefetchPlan plan = prefetcher.Plan(upcoming, MiB(4));
  std::printf("  window length %zu; planned fetches:", plan.window_len);
  for (const SessionId s : plan.to_fetch) {
    std::printf(" s%llu", static_cast<unsigned long long>(s));
  }
  std::printf("\n");
  prefetcher.Execute(plan, 6, hints);
  Dump(store);

  std::printf("\n5. Store statistics:\n");
  const StoreStats& stats = store.stats();
  std::printf("  inserts %llu, updates %llu, demotions %llu, promotions %llu, "
              "evicted out %llu\n",
              static_cast<unsigned long long>(stats.inserts),
              static_cast<unsigned long long>(stats.updates),
              static_cast<unsigned long long>(stats.demotions),
              static_cast<unsigned long long>(stats.promotions),
              static_cast<unsigned long long>(stats.evictions_out));
  return 0;
}
