// Observability walkthrough (DESIGN.md §11): serve a multi-turn, multi-
// session workload with tracing enabled, then dump the metrics snapshot
// (text + JSON) and export a Chrome trace-event file.
//
//   ./build/examples/obs_inspector [--turns N] [--sessions N] [--out PATH]
//
// Open the exported trace in https://ui.perfetto.dev (or chrome://tracing)
// and look for the paper's §3.2 overlaps on the timeline:
//   - "store.promote" / "prefetch.preload" slices on the preloader track
//     running concurrently with "model.forward" on the serving track
//     (layer-wise pre-loading hidden behind computation, §3.2.1);
//   - "engine.save.async" slices on the kv-save-stream track running
//     concurrently with "engine.decode" on the serving track, linked by
//     flow arrows to the turn that produced them (async saving, §3.2.2).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/cached_attention.h"
#include "src/model/transformer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace {

std::vector<ca::TokenId> RandomTokens(ca::Rng& rng, std::size_t n, std::size_t vocab) {
  std::vector<ca::TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<ca::TokenId>(rng.NextBounded(vocab));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ca;

  std::size_t turns = 4;
  std::size_t num_sessions = 6;
  std::string out_path = "obs_inspector.trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--turns") == 0 && i + 1 < argc) {
      turns = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      num_sessions = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--turns N] [--sessions N] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  // DRAM deliberately holds only a couple of sessions, with a §3.3.1 fetch
  // buffer reserved, so KV caches actually migrate between tiers and the
  // preloader has real promotion work to show on the timeline.
  Transformer model(ModelConfig::Mini().WithThreads(2), 7);
  EngineOptions options;
  options.store.block_bytes = KiB(64);
  options.store.dram_capacity = KiB(512);
  options.store.dram_buffer = KiB(128);
  options.store.disk_capacity = MiB(64);
  options.async_save = true;
  CachedAttentionEngine engine(&model, options);
  const std::size_t vocab = model.config().vocab_size;

  Tracer::Get().Enable();
  Tracer::Get().SetThreadName("serving");

  // Background scheduler-aware preloader (§3.3.1): promotes the next
  // sessions in queue order from disk into DRAM while the serving thread
  // computes.
  std::atomic<bool> stop{false};
  std::thread preloader([&] {
    Tracer::Get().SetThreadName("preloader");
    SessionId next = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const SessionId upcoming[] = {next, (next + 1) % num_sessions,
                                    (next + 2) % num_sessions};
      const std::size_t promoted = engine.PrefetchSessions(upcoming);
      next = (next + 1) % num_sessions;
      if (promoted == 0) {
        // Pace the loop when there is nothing to promote, so the trace
        // shows preload work rather than a wall of empty planning spans.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });

  Rng rng(42);
  for (std::size_t turn = 0; turn < turns; ++turn) {
    for (SessionId s = 0; s < num_sessions; ++s) {
      engine.SetQueueHint({(s + 1) % num_sessions, (s + 2) % num_sessions});
      const auto input = RandomTokens(rng, 12, vocab);
      const auto result = engine.Converse(s, input, 16);
      if (!result.ok()) {
        std::fprintf(stderr, "turn failed: %s\n",
                     result.status().ToString().c_str());
        stop.store(true);
        preloader.join();
        return 1;
      }
    }
  }
  stop.store(true);
  preloader.join();
  engine.Flush();
  Tracer::Get().Disable();

  // Republish the cumulative engine/store stats, then snapshot everything.
  engine.PublishMetrics();
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::printf("=== metrics (text) ===\n%s\n", snapshot.ToText().c_str());
  std::printf("=== metrics (json) ===\n%s\n\n", snapshot.ToJson().c_str());

  const Status written = Tracer::Get().ExportChromeJsonToFile(out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("=== trace ===\n");
  std::printf("%zu events (%zu dropped) -> %s\n", Tracer::Get().event_count(),
              Tracer::Get().dropped_count(), out_path.c_str());
  std::printf("open in https://ui.perfetto.dev — look for store.promote /\n"
              "prefetch.preload overlapping model.forward (preload || compute,\n"
              "§3.2.1) and engine.save.async overlapping engine.decode\n"
              "(async save || decode, §3.2.2)\n");
  return 0;
}
