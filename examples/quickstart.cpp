// Quickstart: serve a multi-turn conversation with CachedAttentionEngine.
//
// Builds a mini transformer, wraps it in the engine (AttentionStore with a
// DRAM + disk hierarchy, decoupled-PE KV caches), and runs a three-turn
// conversation. After turn 1 every turn reuses the session's cached KV:
// only the new input tokens are prefilled.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/cached_attention.h"
#include "src/model/tokenizer.h"
#include "src/model/transformer.h"

int main() {
  using namespace ca;

  // 1. A model. Mini config: 4 layers, 8 heads (GQA 4), byte-level vocab.
  const Transformer model(ModelConfig::Mini(), /*seed=*/42);

  // 2. The engine. reuse_kv=true is CachedAttention; the store gets a small
  //    DRAM tier backed by a disk tier so you can watch spilling if you
  //    shrink it further.
  EngineOptions options;
  options.reuse_kv = true;
  options.store.dram_capacity = MiB(64);
  options.store.disk_capacity = MiB(512);
  options.store.block_bytes = KiB(64);
  options.store.disk_path = "/tmp/ca_quickstart.blocks";
  CachedAttentionEngine engine(&model, options);

  // 3. A conversation session.
  const ByteTokenizer tokenizer;
  const SessionId session = 1;
  const char* user_turns[] = {
      "Hello! What is CachedAttention?",
      "And what does AttentionStore do?",
      "Why does truncation not invalidate the cache?",
  };

  for (const char* text : user_turns) {
    const auto tokens = tokenizer.Encode(text);
    const auto result = engine.Converse(session, tokens, /*max_reply_tokens=*/24);
    if (!result.ok()) {
      std::fprintf(stderr, "turn failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("user  > %s\n", text);
    // The mini model is randomly initialised, so the reply bytes are
    // gibberish — what matters here is the caching behaviour.
    std::printf("model > (%zu tokens)\n", result->reply.size());
    std::printf("        cache %s%s | prompt %llu tok | computed %llu | reused %llu | "
                "prefill %.2f ms\n\n",
                result->cache_hit ? "HIT in " : "MISS",
                result->cache_hit ? std::string(TierName(result->hit_tier)).c_str() : "",
                static_cast<unsigned long long>(result->prompt_tokens),
                static_cast<unsigned long long>(result->computed_tokens),
                static_cast<unsigned long long>(result->reused_tokens),
                result->prefill_seconds * 1e3);
  }

  const EngineStats& stats = engine.stats();
  std::printf("session totals: %llu turns, %.1f%% of prompt tokens served from the cache\n",
              static_cast<unsigned long long>(stats.turns), stats.reuse_fraction() * 100.0);
  std::printf("store: %llu lookups, %llu hits (%llu DRAM / %llu disk)\n",
              static_cast<unsigned long long>(engine.store().stats().lookups),
              static_cast<unsigned long long>(engine.store().stats().hits()),
              static_cast<unsigned long long>(engine.store().stats().dram_hits),
              static_cast<unsigned long long>(engine.store().stats().disk_hits));
  return 0;
}
