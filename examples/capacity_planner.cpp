// Capacity planner: the §4.3.6 sizing arithmetic as an operator tool.
//
// Given a model, an expected session arrival rate and a KV time-to-live,
// prints the paper's capacity quantities —
//   CCpS   = context_window x KV bytes/token      (max KV per session)
//   DSpUT  = arrival_rate x TTL                   (distinct sessions per TTL)
//   CCpUT  = DSpUT x CCpS                         (worst-case demand)
// — plus the look-ahead window formulas of §3.3 for a given DRAM/disk
// configuration, and the simulator-measured hit rate at a few RCC/CCpUT
// ratios so the numbers are grounded, not just arithmetic.
//
//   ./build/examples/capacity_planner [model] [rate_per_s] [ttl_minutes]
//   model in {13b, 65b, 70b, falcon}
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/sim/cluster_sim.h"
#include "src/workload/arrivals.h"

int main(int argc, char** argv) {
  using namespace ca;
  ModelDescriptor model = ModelDescriptor::Llama13B();
  if (argc > 1) {
    if (std::strcmp(argv[1], "65b") == 0) {
      model = ModelDescriptor::Llama65B();
    } else if (std::strcmp(argv[1], "70b") == 0) {
      model = ModelDescriptor::Llama70B();
    } else if (std::strcmp(argv[1], "falcon") == 0) {
      model = ModelDescriptor::Falcon40B();
    }
  }
  const double rate = argc > 2 ? std::strtod(argv[2], nullptr) : 0.35;
  const double ttl_minutes = argc > 3 ? std::strtod(argv[3], nullptr) : 60.0;

  const std::uint64_t ccps =
      static_cast<std::uint64_t>(model.context_window) * model.kv_bytes_per_token;
  const double dsput = rate * ttl_minutes * 60.0;
  const auto ccput = static_cast<std::uint64_t>(dsput * static_cast<double>(ccps));

  std::printf("Model %s: %zu-token window, %s KV per token\n", model.name.c_str(),
              model.context_window, FormatBytes(model.kv_bytes_per_token).c_str());
  std::printf("  CCpS  (max KV per session)        : %s\n", FormatBytes(ccps).c_str());
  std::printf("  DSpUT (sessions per %.0f-min TTL)  : %.0f\n", ttl_minutes, dsput);
  std::printf("  CCpUT (worst-case cache demand)   : %s\n\n", FormatBytes(ccput).c_str());

  // Look-ahead windows (§3.3) for the paper's storage configuration.
  const std::uint64_t dram = GiB(128);
  const std::uint64_t disk = TiB(10);
  const std::uint64_t avg_kv = ccps / 4;  // sessions average ~1/4 of the window
  std::printf("With 128 GiB DRAM + 10 TiB disk (avg session KV ~ %s):\n",
              FormatBytes(avg_kv).c_str());
  std::printf("  prefetch window  L_pw = C_mem/S_kv          : %llu jobs\n",
              static_cast<unsigned long long>(dram / avg_kv));
  std::printf("  eviction window  (C_mem + C_disk)/S_kv      : %llu jobs\n\n",
              static_cast<unsigned long long>((dram + disk) / avg_kv));

  std::printf("Measured hit rate vs provisioned capacity (simulated, 1000 sessions,\n"
              "15-min mean pauses, TTL %.0f min):\n", ttl_minutes);
  ShareGptConfig wc;
  wc.think_time_mean_s = 900.0;
  ShareGptGenerator gen(wc, 77);
  auto workload = gen.Generate(1000);
  AssignArrivals(workload, rate, 78);
  std::size_t turns = 0;
  for (const auto& s : workload) {
    turns += s.turns.size();
  }
  for (const double ratio : {0.1, 0.25, 0.5, 1.0}) {
    const auto capacity = static_cast<std::uint64_t>(ratio * static_cast<double>(ccput));
    SimOptions options;
    options.model = model;
    options.store.ttl = FromSeconds(ttl_minutes * 60.0);
    options.store.dram_capacity = std::min<std::uint64_t>(dram, capacity / 8);
    options.store.dram_buffer = options.store.dram_capacity / 8;
    options.store.disk_capacity = capacity - options.store.dram_capacity;
    options.store.block_bytes = MiB(16);
    options.warmup_turns = turns / 5;
    const SimMetrics m = ClusterSim(options, workload).Run();
    std::printf("  RCC/CCpUT %.2f (%9s): hit rate %5.1f%%\n", ratio,
                FormatBytes(capacity).c_str(), m.store.hit_rate() * 100.0);
  }
  return 0;
}
