// Truncation lab: watch what context-window overflow does to a *trained*
// language model under the three schemes of §3.4 / §4.3.5:
//   TT   — truncate the token text, recompute everything (the reference);
//   CA   — truncate the decoupled-PE KV cache, re-embed positions (free);
//   NKVT — truncate a coupled-PE cache (positions scramble, quality dies).
//
// Trains a small LM on an order-2 Markov corpus (~20 s), then prints
// per-scheme perplexity and next-token accuracy after a forced overflow.
//
//   ./build/examples/truncation_lab
#include <cmath>
#include <cstdio>

#include "src/model/eval.h"
#include "src/train/trained_lm.h"

int main() {
  using namespace ca;
  const TrainedLm& lm = GetTrainedLm();
  std::printf("\ntrained mini LM: %zu-layer, d_model %zu, vocab %zu; training loss %.2f "
              "nats/token\n\n",
              lm.config.n_layers, lm.config.d_model, lm.config.vocab_size, lm.train_loss);

  Rng rng(4242);
  const std::size_t hist_len = 96;   // past the window's comfort zone
  const std::size_t drop = 48;       // paper's ratio: half the window
  const std::size_t cont_len = 32;

  const auto stream = lm.corpus.Sample(hist_len + cont_len, rng);
  const std::vector<TokenId> history(stream.begin(), stream.begin() + hist_len);
  const std::vector<TokenId> tt_history(history.begin() + drop, history.end());
  const std::vector<TokenId> continuation(stream.begin() + hist_len, stream.end());

  // TT: the reference — truncated text, full recompute.
  KvCache tt_cache = lm.model.MakeCache(PeMode::kDecoupled);
  (void)lm.model.Forward(tt_history, tt_cache);
  const double nll_tt = ContinuationNll(lm.model, continuation, tt_cache);

  // CA: the full history was cached (decoupled PE); truncate the cache.
  KvCache ca_cache = lm.model.MakeCache(PeMode::kDecoupled);
  (void)lm.model.Forward(history, ca_cache);
  ca_cache.TruncateFront(drop);
  const double nll_ca = ContinuationNll(lm.model, continuation, ca_cache);

  // NKVT: same, but the cache had positions baked in.
  KvCache nkvt_cache = lm.model.MakeCache(PeMode::kCoupled);
  (void)lm.model.Forward(history, nkvt_cache);
  nkvt_cache.TruncateFront(drop);
  const double nll_nkvt = ContinuationNll(lm.model, continuation, nkvt_cache);

  std::printf("perplexity of the true continuation after overflow + truncation:\n");
  std::printf("  TT   (recompute)          : %6.2f   <- reference\n", std::exp(nll_tt));
  std::printf("  CA   (decoupled KV trunc) : %6.2f   <- paper's scheme: matches TT\n",
              std::exp(nll_ca));
  std::printf("  NKVT (coupled KV trunc)   : %6.2f   <- scrambled positions\n",
              std::exp(nll_nkvt));
  std::printf("  (uniform guessing         : %6.2f)\n\n",
              static_cast<double>(lm.config.vocab_size));

  std::printf("cost comparison for this turn (what each scheme must compute):\n");
  std::printf("  TT   : re-prefill %zu tokens\n", tt_history.size());
  std::printf("  CA   : prefill 0 historical tokens (cache reused as-is)\n");
  std::printf("  NKVT : prefill 0 tokens, but the answers are garbage\n");
  return 0;
}
