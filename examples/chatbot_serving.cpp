// Chatbot-cloud serving scenario: simulate a LLaMA-70B serving instance
// (4 A100s, continuous batching) handling a day's worth of multi-turn
// conversations, with and without CachedAttention, and print an operator's
// report: latency, throughput, GPU hours, hit rates and dollars.
//
//   ./build/examples/chatbot_serving [sessions] [arrival_rate]
#include <cstdio>
#include <cstdlib>

#include "src/sim/cluster_sim.h"
#include "src/workload/arrivals.h"

int main(int argc, char** argv) {
  using namespace ca;
  const std::size_t sessions = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;
  const double rate = argc > 2 ? std::strtod(argv[2], nullptr) : 0.35;

  std::printf("Scenario: LLaMA-70B chatbot on 4xA100, %zu conversation sessions arriving at "
              "%.2f/s\n\n",
              sessions, rate);

  ShareGptGenerator generator(ShareGptConfig{}, 2024);
  auto workload = generator.Generate(sessions);
  AssignArrivals(workload, rate, 2025);

  SimOptions ca;
  ca.mode = EngineMode::kCachedAttention;
  ca.model = ModelDescriptor::Llama70B();
  ca.store.dram_capacity = GiB(128);
  ca.store.disk_capacity = TiB(10);
  ca.store.dram_buffer = GiB(16);
  ca.store.block_bytes = MiB(16);
  std::size_t turns = 0;
  for (const auto& s : workload) {
    turns += s.turns.size();
  }
  ca.warmup_turns = turns / 5;

  SimOptions re = ca;
  re.mode = EngineMode::kRecompute;

  const SimMetrics m_ca = ClusterSim(ca, workload).Run();
  const SimMetrics m_re = ClusterSim(re, workload).Run();

  auto report = [](const char* name, const SimMetrics& m) {
    std::printf("--- %s ---\n", name);
    std::printf("  turns served          : %llu\n", static_cast<unsigned long long>(m.turns));
    std::printf("  TTFT mean / p50 / p99 : %.3f / %.3f / %.3f s\n", m.mean_ttft_s(),
                m.ttft_s.p50(), m.ttft_s.p99());
    std::printf("  prefill throughput    : %.0f prompt tok/s\n", m.prefill_throughput());
    std::printf("  GPU time              : %.2f h (prefill %.2f, decode %.2f, stalls %.2f)\n",
                ToSeconds(m.gpu_time()) / 3600.0, ToSeconds(m.prefill_busy) / 3600.0,
                ToSeconds(m.decode_busy) / 3600.0, ToSeconds(m.save_stall) / 3600.0);
    std::printf("  cache hit rate        : %.1f%% (%.1f%% DRAM, %.1f%% disk)\n",
                m.store.hit_rate() * 100.0, m.store.dram_hit_rate() * 100.0,
                m.store.disk_hit_rate() * 100.0);
    std::printf("  cost                  : $%.2f (GPU $%.2f, DRAM $%.2f, SSD $%.2f)\n\n",
                m.cost.total(), m.cost.gpu, m.cost.dram, m.cost.ssd);
  };
  report("CachedAttention", m_ca);
  report("Recomputation baseline", m_re);

  std::printf("CachedAttention vs recomputation: TTFT -%.0f%%, prefill throughput %.1fx, "
              "GPU time %.1fx, cost -%.0f%%\n",
              (1.0 - m_ca.mean_ttft_s() / m_re.mean_ttft_s()) * 100.0,
              m_ca.prefill_throughput() / m_re.prefill_throughput(),
              ToSeconds(m_re.gpu_time()) / ToSeconds(m_ca.gpu_time()),
              (1.0 - m_ca.cost.total() / m_re.cost.total()) * 100.0);
  return 0;
}
