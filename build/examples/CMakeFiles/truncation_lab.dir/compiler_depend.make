# Empty compiler generated dependencies file for truncation_lab.
# This may be replaced when dependencies are built.
