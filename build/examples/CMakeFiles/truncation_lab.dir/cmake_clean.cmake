file(REMOVE_RECURSE
  "CMakeFiles/truncation_lab.dir/truncation_lab.cpp.o"
  "CMakeFiles/truncation_lab.dir/truncation_lab.cpp.o.d"
  "truncation_lab"
  "truncation_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truncation_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
