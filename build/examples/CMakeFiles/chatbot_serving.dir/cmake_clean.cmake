file(REMOVE_RECURSE
  "CMakeFiles/chatbot_serving.dir/chatbot_serving.cpp.o"
  "CMakeFiles/chatbot_serving.dir/chatbot_serving.cpp.o.d"
  "chatbot_serving"
  "chatbot_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chatbot_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
