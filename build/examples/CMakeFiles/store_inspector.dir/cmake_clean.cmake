file(REMOVE_RECURSE
  "CMakeFiles/store_inspector.dir/store_inspector.cpp.o"
  "CMakeFiles/store_inspector.dir/store_inspector.cpp.o.d"
  "store_inspector"
  "store_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
