# Empty compiler generated dependencies file for store_inspector.
# This may be replaced when dependencies are built.
