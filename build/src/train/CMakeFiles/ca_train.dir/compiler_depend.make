# Empty compiler generated dependencies file for ca_train.
# This may be replaced when dependencies are built.
