file(REMOVE_RECURSE
  "libca_train.a"
)
