file(REMOVE_RECURSE
  "CMakeFiles/ca_train.dir/markov_data.cc.o"
  "CMakeFiles/ca_train.dir/markov_data.cc.o.d"
  "CMakeFiles/ca_train.dir/trained_lm.cc.o"
  "CMakeFiles/ca_train.dir/trained_lm.cc.o.d"
  "CMakeFiles/ca_train.dir/trainer.cc.o"
  "CMakeFiles/ca_train.dir/trainer.cc.o.d"
  "libca_train.a"
  "libca_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
