# Empty compiler generated dependencies file for ca_model.
# This may be replaced when dependencies are built.
