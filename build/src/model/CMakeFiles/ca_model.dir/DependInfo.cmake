
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/checkpoint.cc" "src/model/CMakeFiles/ca_model.dir/checkpoint.cc.o" "gcc" "src/model/CMakeFiles/ca_model.dir/checkpoint.cc.o.d"
  "/root/repo/src/model/compression.cc" "src/model/CMakeFiles/ca_model.dir/compression.cc.o" "gcc" "src/model/CMakeFiles/ca_model.dir/compression.cc.o.d"
  "/root/repo/src/model/config.cc" "src/model/CMakeFiles/ca_model.dir/config.cc.o" "gcc" "src/model/CMakeFiles/ca_model.dir/config.cc.o.d"
  "/root/repo/src/model/eval.cc" "src/model/CMakeFiles/ca_model.dir/eval.cc.o" "gcc" "src/model/CMakeFiles/ca_model.dir/eval.cc.o.d"
  "/root/repo/src/model/kv_cache.cc" "src/model/CMakeFiles/ca_model.dir/kv_cache.cc.o" "gcc" "src/model/CMakeFiles/ca_model.dir/kv_cache.cc.o.d"
  "/root/repo/src/model/rope.cc" "src/model/CMakeFiles/ca_model.dir/rope.cc.o" "gcc" "src/model/CMakeFiles/ca_model.dir/rope.cc.o.d"
  "/root/repo/src/model/tokenizer.cc" "src/model/CMakeFiles/ca_model.dir/tokenizer.cc.o" "gcc" "src/model/CMakeFiles/ca_model.dir/tokenizer.cc.o.d"
  "/root/repo/src/model/transformer.cc" "src/model/CMakeFiles/ca_model.dir/transformer.cc.o" "gcc" "src/model/CMakeFiles/ca_model.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
