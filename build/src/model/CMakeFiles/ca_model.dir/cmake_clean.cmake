file(REMOVE_RECURSE
  "CMakeFiles/ca_model.dir/checkpoint.cc.o"
  "CMakeFiles/ca_model.dir/checkpoint.cc.o.d"
  "CMakeFiles/ca_model.dir/compression.cc.o"
  "CMakeFiles/ca_model.dir/compression.cc.o.d"
  "CMakeFiles/ca_model.dir/config.cc.o"
  "CMakeFiles/ca_model.dir/config.cc.o.d"
  "CMakeFiles/ca_model.dir/eval.cc.o"
  "CMakeFiles/ca_model.dir/eval.cc.o.d"
  "CMakeFiles/ca_model.dir/kv_cache.cc.o"
  "CMakeFiles/ca_model.dir/kv_cache.cc.o.d"
  "CMakeFiles/ca_model.dir/rope.cc.o"
  "CMakeFiles/ca_model.dir/rope.cc.o.d"
  "CMakeFiles/ca_model.dir/tokenizer.cc.o"
  "CMakeFiles/ca_model.dir/tokenizer.cc.o.d"
  "CMakeFiles/ca_model.dir/transformer.cc.o"
  "CMakeFiles/ca_model.dir/transformer.cc.o.d"
  "libca_model.a"
  "libca_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
