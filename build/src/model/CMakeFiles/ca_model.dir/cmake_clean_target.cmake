file(REMOVE_RECURSE
  "libca_model.a"
)
