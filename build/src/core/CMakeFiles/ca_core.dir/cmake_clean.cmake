file(REMOVE_RECURSE
  "CMakeFiles/ca_core.dir/cached_attention.cc.o"
  "CMakeFiles/ca_core.dir/cached_attention.cc.o.d"
  "libca_core.a"
  "libca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
