# Empty compiler generated dependencies file for ca_store.
# This may be replaced when dependencies are built.
