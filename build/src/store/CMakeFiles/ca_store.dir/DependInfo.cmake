
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/attention_store.cc" "src/store/CMakeFiles/ca_store.dir/attention_store.cc.o" "gcc" "src/store/CMakeFiles/ca_store.dir/attention_store.cc.o.d"
  "/root/repo/src/store/block_allocator.cc" "src/store/CMakeFiles/ca_store.dir/block_allocator.cc.o" "gcc" "src/store/CMakeFiles/ca_store.dir/block_allocator.cc.o.d"
  "/root/repo/src/store/block_storage.cc" "src/store/CMakeFiles/ca_store.dir/block_storage.cc.o" "gcc" "src/store/CMakeFiles/ca_store.dir/block_storage.cc.o.d"
  "/root/repo/src/store/eviction_policy.cc" "src/store/CMakeFiles/ca_store.dir/eviction_policy.cc.o" "gcc" "src/store/CMakeFiles/ca_store.dir/eviction_policy.cc.o.d"
  "/root/repo/src/store/prefetcher.cc" "src/store/CMakeFiles/ca_store.dir/prefetcher.cc.o" "gcc" "src/store/CMakeFiles/ca_store.dir/prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
