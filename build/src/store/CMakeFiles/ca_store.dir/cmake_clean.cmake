file(REMOVE_RECURSE
  "CMakeFiles/ca_store.dir/attention_store.cc.o"
  "CMakeFiles/ca_store.dir/attention_store.cc.o.d"
  "CMakeFiles/ca_store.dir/block_allocator.cc.o"
  "CMakeFiles/ca_store.dir/block_allocator.cc.o.d"
  "CMakeFiles/ca_store.dir/block_storage.cc.o"
  "CMakeFiles/ca_store.dir/block_storage.cc.o.d"
  "CMakeFiles/ca_store.dir/eviction_policy.cc.o"
  "CMakeFiles/ca_store.dir/eviction_policy.cc.o.d"
  "CMakeFiles/ca_store.dir/prefetcher.cc.o"
  "CMakeFiles/ca_store.dir/prefetcher.cc.o.d"
  "libca_store.a"
  "libca_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
