file(REMOVE_RECURSE
  "libca_store.a"
)
