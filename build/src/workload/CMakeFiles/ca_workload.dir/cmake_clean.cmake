file(REMOVE_RECURSE
  "CMakeFiles/ca_workload.dir/arrivals.cc.o"
  "CMakeFiles/ca_workload.dir/arrivals.cc.o.d"
  "CMakeFiles/ca_workload.dir/sharegpt.cc.o"
  "CMakeFiles/ca_workload.dir/sharegpt.cc.o.d"
  "CMakeFiles/ca_workload.dir/trace_io.cc.o"
  "CMakeFiles/ca_workload.dir/trace_io.cc.o.d"
  "libca_workload.a"
  "libca_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
