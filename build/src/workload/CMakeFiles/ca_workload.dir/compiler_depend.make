# Empty compiler generated dependencies file for ca_workload.
# This may be replaced when dependencies are built.
