file(REMOVE_RECURSE
  "libca_workload.a"
)
