file(REMOVE_RECURSE
  "CMakeFiles/ca_sched.dir/batcher.cc.o"
  "CMakeFiles/ca_sched.dir/batcher.cc.o.d"
  "CMakeFiles/ca_sched.dir/job_queue.cc.o"
  "CMakeFiles/ca_sched.dir/job_queue.cc.o.d"
  "libca_sched.a"
  "libca_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
