# Empty dependencies file for ca_sched.
# This may be replaced when dependencies are built.
