file(REMOVE_RECURSE
  "libca_sched.a"
)
