
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/batcher.cc" "src/sched/CMakeFiles/ca_sched.dir/batcher.cc.o" "gcc" "src/sched/CMakeFiles/ca_sched.dir/batcher.cc.o.d"
  "/root/repo/src/sched/job_queue.cc" "src/sched/CMakeFiles/ca_sched.dir/job_queue.cc.o" "gcc" "src/sched/CMakeFiles/ca_sched.dir/job_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/ca_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
