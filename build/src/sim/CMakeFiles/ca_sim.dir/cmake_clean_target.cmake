file(REMOVE_RECURSE
  "libca_sim.a"
)
