file(REMOVE_RECURSE
  "CMakeFiles/ca_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/ca_sim.dir/cluster_sim.cc.o.d"
  "CMakeFiles/ca_sim.dir/cost_model.cc.o"
  "CMakeFiles/ca_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/ca_sim.dir/timing_model.cc.o"
  "CMakeFiles/ca_sim.dir/timing_model.cc.o.d"
  "libca_sim.a"
  "libca_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
