file(REMOVE_RECURSE
  "CMakeFiles/ca_common.dir/logging.cc.o"
  "CMakeFiles/ca_common.dir/logging.cc.o.d"
  "CMakeFiles/ca_common.dir/stats.cc.o"
  "CMakeFiles/ca_common.dir/stats.cc.o.d"
  "CMakeFiles/ca_common.dir/status.cc.o"
  "CMakeFiles/ca_common.dir/status.cc.o.d"
  "CMakeFiles/ca_common.dir/table.cc.o"
  "CMakeFiles/ca_common.dir/table.cc.o.d"
  "CMakeFiles/ca_common.dir/thread_pool.cc.o"
  "CMakeFiles/ca_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/ca_common.dir/units.cc.o"
  "CMakeFiles/ca_common.dir/units.cc.o.d"
  "libca_common.a"
  "libca_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
