# Empty compiler generated dependencies file for ca_common.
# This may be replaced when dependencies are built.
