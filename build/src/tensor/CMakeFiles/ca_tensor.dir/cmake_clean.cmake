file(REMOVE_RECURSE
  "CMakeFiles/ca_tensor.dir/ops.cc.o"
  "CMakeFiles/ca_tensor.dir/ops.cc.o.d"
  "CMakeFiles/ca_tensor.dir/tensor.cc.o"
  "CMakeFiles/ca_tensor.dir/tensor.cc.o.d"
  "libca_tensor.a"
  "libca_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
