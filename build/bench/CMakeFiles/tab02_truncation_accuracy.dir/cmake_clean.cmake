file(REMOVE_RECURSE
  "CMakeFiles/tab02_truncation_accuracy.dir/tab02_truncation_accuracy.cc.o"
  "CMakeFiles/tab02_truncation_accuracy.dir/tab02_truncation_accuracy.cc.o.d"
  "tab02_truncation_accuracy"
  "tab02_truncation_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_truncation_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
