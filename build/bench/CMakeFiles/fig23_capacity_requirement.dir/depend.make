# Empty dependencies file for fig23_capacity_requirement.
# This may be replaced when dependencies are built.
