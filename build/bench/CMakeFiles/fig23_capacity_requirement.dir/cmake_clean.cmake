file(REMOVE_RECURSE
  "CMakeFiles/fig23_capacity_requirement.dir/fig23_capacity_requirement.cc.o"
  "CMakeFiles/fig23_capacity_requirement.dir/fig23_capacity_requirement.cc.o.d"
  "fig23_capacity_requirement"
  "fig23_capacity_requirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_capacity_requirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
