file(REMOVE_RECURSE
  "CMakeFiles/fig22_context_overflow.dir/fig22_context_overflow.cc.o"
  "CMakeFiles/fig22_context_overflow.dir/fig22_context_overflow.cc.o.d"
  "fig22_context_overflow"
  "fig22_context_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_context_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
