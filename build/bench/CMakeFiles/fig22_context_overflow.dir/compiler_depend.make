# Empty compiler generated dependencies file for fig22_context_overflow.
# This may be replaced when dependencies are built.
