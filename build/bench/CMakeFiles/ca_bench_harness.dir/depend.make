# Empty dependencies file for ca_bench_harness.
# This may be replaced when dependencies are built.
