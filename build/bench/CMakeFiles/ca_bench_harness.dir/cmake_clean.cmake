file(REMOVE_RECURSE
  "CMakeFiles/ca_bench_harness.dir/harness/harness.cc.o"
  "CMakeFiles/ca_bench_harness.dir/harness/harness.cc.o.d"
  "libca_bench_harness.a"
  "libca_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
