file(REMOVE_RECURSE
  "libca_bench_harness.a"
)
