file(REMOVE_RECURSE
  "CMakeFiles/fig21_eviction_policies.dir/fig21_eviction_policies.cc.o"
  "CMakeFiles/fig21_eviction_policies.dir/fig21_eviction_policies.cc.o.d"
  "fig21_eviction_policies"
  "fig21_eviction_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_eviction_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
