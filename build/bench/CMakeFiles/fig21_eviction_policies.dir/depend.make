# Empty dependencies file for fig21_eviction_policies.
# This may be replaced when dependencies are built.
