# Empty dependencies file for fig01_prefill_decode.
# This may be replaced when dependencies are built.
