file(REMOVE_RECURSE
  "CMakeFiles/fig01_prefill_decode.dir/fig01_prefill_decode.cc.o"
  "CMakeFiles/fig01_prefill_decode.dir/fig01_prefill_decode.cc.o.d"
  "fig01_prefill_decode"
  "fig01_prefill_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_prefill_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
