# Empty compiler generated dependencies file for fig15_prefill_throughput.
# This may be replaced when dependencies are built.
