file(REMOVE_RECURSE
  "CMakeFiles/fig19_preload_buffers.dir/fig19_preload_buffers.cc.o"
  "CMakeFiles/fig19_preload_buffers.dir/fig19_preload_buffers.cc.o.d"
  "fig19_preload_buffers"
  "fig19_preload_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_preload_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
