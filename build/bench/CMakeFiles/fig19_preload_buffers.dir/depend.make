# Empty dependencies file for fig19_preload_buffers.
# This may be replaced when dependencies are built.
