
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig20_async_saving.cc" "bench/CMakeFiles/fig20_async_saving.dir/fig20_async_saving.cc.o" "gcc" "bench/CMakeFiles/fig20_async_saving.dir/fig20_async_saving.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ca_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ca_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ca_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ca_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/ca_store.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
