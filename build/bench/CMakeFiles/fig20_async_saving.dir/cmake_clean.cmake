file(REMOVE_RECURSE
  "CMakeFiles/fig20_async_saving.dir/fig20_async_saving.cc.o"
  "CMakeFiles/fig20_async_saving.dir/fig20_async_saving.cc.o.d"
  "fig20_async_saving"
  "fig20_async_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_async_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
