# Empty dependencies file for fig20_async_saving.
# This may be replaced when dependencies are built.
