# Empty dependencies file for fig13_hit_rate.
# This may be replaced when dependencies are built.
