file(REMOVE_RECURSE
  "CMakeFiles/fig13_hit_rate.dir/fig13_hit_rate.cc.o"
  "CMakeFiles/fig13_hit_rate.dir/fig13_hit_rate.cc.o.d"
  "fig13_hit_rate"
  "fig13_hit_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hit_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
