# Empty compiler generated dependencies file for ablation_prefill_overhead.
# This may be replaced when dependencies are built.
