file(REMOVE_RECURSE
  "CMakeFiles/ablation_prefill_overhead.dir/ablation_prefill_overhead.cc.o"
  "CMakeFiles/ablation_prefill_overhead.dir/ablation_prefill_overhead.cc.o.d"
  "ablation_prefill_overhead"
  "ablation_prefill_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefill_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
