file(REMOVE_RECURSE
  "CMakeFiles/fig04_recompute_inefficiency.dir/fig04_recompute_inefficiency.cc.o"
  "CMakeFiles/fig04_recompute_inefficiency.dir/fig04_recompute_inefficiency.cc.o.d"
  "fig04_recompute_inefficiency"
  "fig04_recompute_inefficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_recompute_inefficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
