# Empty dependencies file for fig04_recompute_inefficiency.
# This may be replaced when dependencies are built.
