file(REMOVE_RECURSE
  "CMakeFiles/fig02_workload_stats.dir/fig02_workload_stats.cc.o"
  "CMakeFiles/fig02_workload_stats.dir/fig02_workload_stats.cc.o.d"
  "fig02_workload_stats"
  "fig02_workload_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_workload_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
