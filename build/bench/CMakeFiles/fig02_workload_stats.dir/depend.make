# Empty dependencies file for fig02_workload_stats.
# This may be replaced when dependencies are built.
