# Empty dependencies file for tab01_ppl_fidelity.
# This may be replaced when dependencies are built.
