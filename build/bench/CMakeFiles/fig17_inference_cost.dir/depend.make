# Empty dependencies file for fig17_inference_cost.
# This may be replaced when dependencies are built.
