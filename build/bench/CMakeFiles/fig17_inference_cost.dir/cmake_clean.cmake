file(REMOVE_RECURSE
  "CMakeFiles/fig17_inference_cost.dir/fig17_inference_cost.cc.o"
  "CMakeFiles/fig17_inference_cost.dir/fig17_inference_cost.cc.o.d"
  "fig17_inference_cost"
  "fig17_inference_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_inference_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
