file(REMOVE_RECURSE
  "CMakeFiles/fig25_arrival_rates.dir/fig25_arrival_rates.cc.o"
  "CMakeFiles/fig25_arrival_rates.dir/fig25_arrival_rates.cc.o.d"
  "fig25_arrival_rates"
  "fig25_arrival_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_arrival_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
