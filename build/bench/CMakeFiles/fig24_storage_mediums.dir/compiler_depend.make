# Empty compiler generated dependencies file for fig24_storage_mediums.
# This may be replaced when dependencies are built.
