file(REMOVE_RECURSE
  "CMakeFiles/fig24_storage_mediums.dir/fig24_storage_mediums.cc.o"
  "CMakeFiles/fig24_storage_mediums.dir/fig24_storage_mediums.cc.o.d"
  "fig24_storage_mediums"
  "fig24_storage_mediums.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_storage_mediums.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
