# Empty dependencies file for fig18_re_vs_ca.
# This may be replaced when dependencies are built.
