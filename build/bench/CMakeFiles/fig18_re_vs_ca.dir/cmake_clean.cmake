file(REMOVE_RECURSE
  "CMakeFiles/fig18_re_vs_ca.dir/fig18_re_vs_ca.cc.o"
  "CMakeFiles/fig18_re_vs_ca.dir/fig18_re_vs_ca.cc.o.d"
  "fig18_re_vs_ca"
  "fig18_re_vs_ca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_re_vs_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
