# Empty dependencies file for fig14_ttft.
# This may be replaced when dependencies are built.
