file(REMOVE_RECURSE
  "CMakeFiles/fig14_ttft.dir/fig14_ttft.cc.o"
  "CMakeFiles/fig14_ttft.dir/fig14_ttft.cc.o.d"
  "fig14_ttft"
  "fig14_ttft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ttft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
