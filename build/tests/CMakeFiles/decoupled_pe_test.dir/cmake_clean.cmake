file(REMOVE_RECURSE
  "CMakeFiles/decoupled_pe_test.dir/decoupled_pe_test.cc.o"
  "CMakeFiles/decoupled_pe_test.dir/decoupled_pe_test.cc.o.d"
  "decoupled_pe_test"
  "decoupled_pe_test.pdb"
  "decoupled_pe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupled_pe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
