# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/rope_test[1]_include.cmake")
include("/root/repo/build/tests/kv_cache_test[1]_include.cmake")
include("/root/repo/build/tests/transformer_test[1]_include.cmake")
include("/root/repo/build/tests/decoupled_pe_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/eviction_policy_test[1]_include.cmake")
include("/root/repo/build/tests/prefetcher_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/timing_model_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_sim_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/compression_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
