// Figure 17: end-to-end inference cost (AWS on-demand prices: $5/h per
// A100, $0.0088/GB/h DRAM, $0.000082/GB/h SSD), CachedAttention vs
// recomputation.
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"

int main() {
  using namespace ca;
  using namespace ca::bench;
  PrintHeader("Figure 17 — inference cost",
              "Total cost (GPU time + DRAM + SSD rental) of CA vs RE per model, and the "
              "storage share of CA's cost.",
              "CA saves 70% (13B), 43% (65B), 66% (70B), 68% (Falcon-40B); storage is "
              "16.4%/9.0%/9.0%/9.0% of CA's cost.");

  const E2EConfig config = E2EConfig::FromEnv();
  const char* paper_savings[] = {"70%", "43%", "66%", "68%"};
  const char* paper_storage[] = {"16.4%", "9.0%", "9.0%", "9.0%"};

  Table table({"model", "CA ($)", "RE ($)", "savings", "paper", "CA storage share",
               "paper share"});
  int i = 0;
  for (const ModelDescriptor& model : ModelDescriptor::EvaluationSuite()) {
    const CaVsRe r = RunCaVsRe(model, config);
    table.AddRow({model.name, Table::Num(r.ca.cost.total()), Table::Num(r.re.cost.total()),
                  Table::Percent(Reduction(r.ca.cost.total(), r.re.cost.total())),
                  paper_savings[i], Table::Percent(r.ca.cost.storage_fraction()),
                  paper_storage[i]});
    ++i;
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
