// Figure 25: impact of session arrival rates (0.5-2.0 sessions/s) on hit
// rate, TTFT, prefill throughput and GPU time (LLaMA-13B, 128G/10T).
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"

int main() {
  using namespace ca;
  using namespace ca::bench;
  PrintHeader(
      "Figure 25 — session arrival rates",
      "Hit rate, mean TTFT, prefill throughput and GPU time vs the Poisson session "
      "arrival rate (LLaMA-13B, 128G/10T, TTL-free).",
      "hit rate eases 82%->77% from 0.5/s to 2.0/s; TTFT 0.122s->0.154s; throughput "
      "858K->681K tok/s; GPU time 6.25h->7.01h — arrival rate has minor impact.");

  E2EConfig config = E2EConfig::FromEnv();

  Table table({"arrival rate (/s)", "hit rate", "TTFT mean (s)", "TTFT p50 (s)",
               "prefill tput (tok/s)", "GPU time (h)"});
  for (const double rate : {0.5, 1.0, 1.5, 2.0}) {
    config.arrival_rate = rate;
    const auto workload = BuildWorkload(config);
    const SimMetrics m =
        Run(PaperDefaults(ModelDescriptor::Llama13B()), workload, config.warmup_fraction);
    table.AddRow({Table::Num(rate, 1), Table::Percent(m.store.hit_rate()),
                  Table::Num(m.mean_ttft_s(), 3), Table::Num(m.ttft_s.p50(), 3),
                  Table::Num(m.prefill_throughput(), 0),
                  Table::Num(ToSeconds(m.gpu_time()) / 3600.0)});
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
