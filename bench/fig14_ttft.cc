// Figure 14: time to first token (TTFT), CachedAttention vs recomputation,
// for the four evaluation models.
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"

int main() {
  using namespace ca;
  using namespace ca::bench;
  PrintHeader("Figure 14 — time to first token",
              "Mean TTFT of CachedAttention (CA) vs recomputation (RE) per model.",
              "CA reduces TTFT by 85% (13B), 61% (65B), 87% (70B), 86% (Falcon-40B).");

  const E2EConfig config = E2EConfig::FromEnv();
  const char* paper[] = {"85%", "61%", "87%", "86%"};

  Table table({"model", "CA TTFT (s)", "RE TTFT (s)", "reduction", "paper"});
  int i = 0;
  for (const ModelDescriptor& model : ModelDescriptor::EvaluationSuite()) {
    const CaVsRe r = RunCaVsRe(model, config);
    table.AddRow({model.name, Table::Num(r.ca.mean_ttft_s(), 3), Table::Num(r.re.mean_ttft_s(), 3),
                  Table::Percent(Reduction(r.ca.mean_ttft_s(), r.re.mean_ttft_s())), paper[i++]});
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
