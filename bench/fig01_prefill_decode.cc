// Figure 1b: prefill latency grows with prompt length while per-iteration
// decode latency stays nearly constant (LLaMA-70B, batch 8, 4 A100s).
#include <cstdio>

#include "bench/harness/harness.h"
#include "src/sim/timing_model.h"

int main() {
  using namespace ca;
  bench::PrintHeader(
      "Figure 1b — prefill vs decode latency",
      "Execution latency of the two generation phases for LLaMA-70B (batch 8, 4 A100s).",
      "prefill latency grows roughly linearly with prompt tokens; decode latency per "
      "iteration is nearly flat.");

  const TimingModel tm(ModelDescriptor::Llama70B(), HardwareConfig::A100Node());
  Table table({"prompt tokens", "prefill (ms)", "decode iter (ms)"});
  for (const std::uint64_t tokens : {128ULL, 256ULL, 512ULL, 1024ULL, 2048ULL, 4096ULL}) {
    table.AddRow({std::to_string(tokens), Table::Num(ToMilliseconds(tm.PrefillTime(tokens))),
                  Table::Num(ToMilliseconds(tm.DecodeIterTime(8, tokens)))});
  }
  table.Print(std::cout);

  const double growth = ToMilliseconds(tm.PrefillTime(4096)) / ToMilliseconds(tm.PrefillTime(128));
  const double decode_growth =
      ToMilliseconds(tm.DecodeIterTime(8, 4096)) / ToMilliseconds(tm.DecodeIterTime(8, 128));
  std::printf("\nprefill grows %.1fx over the sweep; decode grows %.2fx (near-flat)\n\n", growth,
              decode_growth);
  return 0;
}
