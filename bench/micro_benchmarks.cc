// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives of the real execution path: dense kernels, transformer
// forward, KV cache serialization, AttentionStore operations and the block
// allocator.
//
// `tools/bench_compare.py --ingest` turns the JSON output into an entry of
// the tracked BENCH_kernels.json perf trajectory; see README "Kernel
// benchmarks".
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "src/common/hash.h"
#include "src/common/mutex.h"
#include "src/model/transformer.h"
#include "src/store/attention_store.h"
#include "src/store/block_allocator.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/ops.h"

namespace ca {
namespace {

const Transformer& BenchModel() {
  static const Transformer* model = new Transformer(ModelConfig::Mini(), 7);
  return *model;
}

// Threaded twin of BenchModel: same weights (same seed), forward pass runs
// on a pool. Tracks the parallel speedup/overhead next to the serial
// numbers (on a single-core runner this measures pure overhead).
const Transformer& BenchModelThreads(std::size_t threads) {
  static const Transformer* model =
      new Transformer(ModelConfig::Mini().WithThreads(4), 7);
  CA_CHECK_EQ(threads, 4U);
  return *model;
}

void BM_MatMul(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Tensor a = Tensor::Randn({dim, dim}, rng);
  const Tensor b = Tensor::Randn({dim, dim}, rng);
  Tensor out({dim, dim});
  for (auto _ : state) {
    MatMul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  // items = multiply-accumulates.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim * dim * dim));
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransposedB(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  const Tensor a = Tensor::Randn({dim, dim}, rng);
  const Tensor bt = Tensor::Randn({dim, dim}, rng);
  Tensor out({dim, dim});
  for (auto _ : state) {
    MatMulTransposedB(a, bt, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dim * dim * dim));
}
BENCHMARK(BM_MatMulTransposedB)->Arg(64)->Arg(128)->Arg(256);

std::vector<TokenId> BenchTokens(std::size_t n) {
  Rng rng(3);
  std::vector<TokenId> out(n);
  for (auto& t : out) {
    t = static_cast<TokenId>(rng.NextBounded(BenchModel().config().vocab_size));
  }
  return out;
}

void BM_TransformerPrefill(benchmark::State& state) {
  const auto tokens = BenchTokens(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    KvCache cache = BenchModel().MakeCache(PeMode::kDecoupled);
    benchmark::DoNotOptimize(BenchModel().Forward(tokens, cache));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TransformerPrefill)->Arg(16)->Arg(64)->Arg(128);

void BM_TransformerDecodeStep(benchmark::State& state) {
  const auto prompt = BenchTokens(static_cast<std::size_t>(state.range(0)));
  KvCache cache = BenchModel().MakeCache(PeMode::kDecoupled);
  (void)BenchModel().Forward(prompt, cache);
  const TokenId tok[] = {1};
  for (auto _ : state) {
    state.PauseTiming();
    KvCache step_cache = cache.Clone();
    state.ResumeTiming();
    benchmark::DoNotOptimize(BenchModel().Forward(tok, step_cache));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransformerDecodeStep)->Arg(64)->Arg(192);

void BM_TransformerPrefillThreads(benchmark::State& state) {
  const auto& model = BenchModelThreads(4);
  const auto tokens = BenchTokens(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    KvCache cache = model.MakeCache(PeMode::kDecoupled);
    benchmark::DoNotOptimize(model.Forward(tokens, cache));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TransformerPrefillThreads)->Arg(128);

void BM_KvCacheSerialize(benchmark::State& state) {
  KvCache cache = BenchModel().MakeCache(PeMode::kDecoupled);
  const auto tokens = BenchTokens(static_cast<std::size_t>(state.range(0)));
  (void)BenchModel().Forward(tokens, cache);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Serialize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cache.byte_size()));
}
BENCHMARK(BM_KvCacheSerialize)->Arg(64)->Arg(192);

void BM_KvCacheDeserialize(benchmark::State& state) {
  KvCache cache = BenchModel().MakeCache(PeMode::kDecoupled);
  const auto tokens = BenchTokens(static_cast<std::size_t>(state.range(0)));
  (void)BenchModel().Forward(tokens, cache);
  const auto bytes = cache.Serialize();
  for (auto _ : state) {
    auto restored = KvCache::Deserialize(BenchModel().config(), bytes);
    benchmark::DoNotOptimize(restored);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_KvCacheDeserialize)->Arg(64)->Arg(192);

void BM_BlockAllocatorCycle(benchmark::State& state) {
  BlockAllocator alloc(GiB(4), MiB(4));
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto blocks = alloc.Allocate(n);
    alloc.Free(*blocks);
    benchmark::DoNotOptimize(blocks);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlockAllocatorCycle)->Arg(1)->Arg(16)->Arg(256);

// Store benchmark methodology: tracing is forced off (and the buffer
// drained) before every BM_Store* run, so a tracer left enabled by another
// benchmark in the same process cannot bill span bookkeeping to the store,
// and each benchmark builds its own store so metrics state starts cold.
// PR4's round-trip numbers were polluted by exactly this; see DESIGN.md §14.
void StoreBenchSetup() {
  Tracer::Get().Disable();
  Tracer::Get().Clear();
}

void BM_StorePutAccess(benchmark::State& state) {
  StoreBenchSetup();
  StoreConfig config;
  config.dram_capacity = GiB(8);
  config.disk_capacity = GiB(64);
  config.block_bytes = MiB(4);
  AttentionStore store(config);
  const SchedulerHints hints;
  SimTime now = 0;
  SessionId next = 0;
  for (auto _ : state) {
    const SessionId s = next++ % 512;
    benchmark::DoNotOptimize(store.Put(s, MiB(8), 1000, {}, ++now, hints));
    benchmark::DoNotOptimize(store.Access(s, ++now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StorePutAccess);

StoreConfig PayloadStoreConfig(bool verify_checksums) {
  StoreConfig config;
  config.dram_capacity = GiB(1);
  config.disk_capacity = 0;
  config.block_bytes = MiB(1);
  config.real_payloads = true;
  config.verify_checksums = verify_checksums;
  return config;
}

void BM_StorePayloadRoundTrip(benchmark::State& state) {
  StoreBenchSetup();
  AttentionStore store(PayloadStoreConfig(true));
  const SchedulerHints hints;
  const std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)), 0x5A);
  SimTime now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Put(1, payload.size(), 100, payload, ++now, hints));
    benchmark::DoNotOptimize(store.ReadPayload(1));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) * 2);
}
BENCHMARK(BM_StorePayloadRoundTrip)->Arg(1 << 20)->Arg(16 << 20);

// Write and read halves measured alone, with the checksum as an explicit
// axis (args: {payload_bytes, checksum_on}) so a hash regression shows up
// as the delta between the two columns instead of hiding inside the
// round-trip aggregate.
void BM_StoreWriteOnly(benchmark::State& state) {
  StoreBenchSetup();
  AttentionStore store(PayloadStoreConfig(state.range(1) != 0));
  const SchedulerHints hints;
  const std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)), 0x5A);
  SimTime now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Put(1, payload.size(), 100, payload, ++now, hints));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_StoreWriteOnly)
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 0})
    ->Args({16 << 20, 1})
    ->Args({16 << 20, 0});

void BM_StoreReadOnly(benchmark::State& state) {
  StoreBenchSetup();
  AttentionStore store(PayloadStoreConfig(state.range(1) != 0));
  const SchedulerHints hints;
  const std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)), 0x5A);
  CA_CHECK(store.Put(1, payload.size(), 100, payload, 1, hints).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.ReadPayload(1));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_StoreReadOnly)
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 0})
    ->Args({16 << 20, 1})
    ->Args({16 << 20, 0});

// Durable open cost (DESIGN.md §15): replay the metadata journal and adopt
// K disk-resident records. Setup seeds the store once; every iteration is a
// full AttentionStore::Open against the same files. Recovery compacts the
// journal on its way out, so iterations replay a snapshot-sized journal —
// the steady state a long-lived store restarts from. Arg = record count.
void BM_StoreRecoveryOpen(benchmark::State& state) {
  StoreBenchSetup();
  const auto records = static_cast<std::uint64_t>(state.range(0));
  const std::string path =
      "/tmp/ca_bench_recovery." + std::to_string(::getpid()) + ".blocks";
  std::remove(path.c_str());
  std::remove((path + ".meta").c_str());
  StoreConfig config;
  config.hbm_capacity = 0;
  config.dram_capacity = 0;
  config.disk_capacity = GiB(1);
  config.block_bytes = KiB(64);
  config.real_payloads = true;
  config.durable = true;
  config.disk_path = path;
  {
    auto opened = AttentionStore::Open(config);
    CA_CHECK(opened.ok()) << opened.status();
    const SchedulerHints hints;
    const std::vector<std::uint8_t> payload(KiB(64), 0x5A);
    for (std::uint64_t s = 1; s <= records; ++s) {
      CA_CHECK(
          opened->Put(s, payload.size(), 100, payload, static_cast<SimTime>(s), hints).ok());
    }
  }
  for (auto _ : state) {
    auto reopened = AttentionStore::Open(config);
    CA_CHECK(reopened.ok()) << reopened.status();
    benchmark::DoNotOptimize(reopened->RecordCount());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records));
  std::remove(path.c_str());
  std::remove((path + ".meta").c_str());
}
BENCHMARK(BM_StoreRecoveryOpen)->Arg(16)->Arg(256);

// Cross-session prefix sharing (DESIGN.md §17). A fleet of sessions saves
// the same token prefix; after the warm-up put every chunk probe hits the
// prefix index, so the steady-state cost is probes + one private-tail write
// instead of serializing and copying the whole payload. bytes/sec counts
// the *logical* payload, so the number reads as effective dedup throughput.
// Arg = prefix tokens (1 KiB of KV per token, 64-token chunks).
void BM_StoreSharedPrefixPut(benchmark::State& state) {
  StoreBenchSetup();
  StoreConfig config;
  config.dram_capacity = GiB(8);
  config.disk_capacity = 0;
  config.block_bytes = KiB(64);
  config.real_payloads = true;
  config.share_prefixes = true;
  config.share_chunk_tokens = 64;
  AttentionStore store(config);
  const SchedulerHints hints;
  const auto prefix_tokens = static_cast<std::size_t>(state.range(0));
  const std::uint64_t bytes_per_token = KiB(1);
  std::vector<std::uint32_t> tokens(prefix_tokens);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = static_cast<std::uint32_t>(i * 2654435761u + 97u);
  }
  const std::vector<std::uint8_t> payload(prefix_tokens * bytes_per_token, 0x5A);
  SimTime now = 0;
  SessionId next = 0;
  {
    // Warm-up put pays the one-time chunk writes; iterations measure dedup.
    SpanChunkSource source(payload, bytes_per_token);
    CA_CHECK(store.PutShared(1'000'000, tokens, source, ++now, hints).ok());
  }
  for (auto _ : state) {
    const SessionId s = next++ % 512;
    SpanChunkSource source(payload, bytes_per_token);
    benchmark::DoNotOptimize(store.PutShared(s, tokens, source, ++now, hints));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_StoreSharedPrefixPut)->Arg(512)->Arg(4096);

// The chain-keyed probe itself: one warm session re-saves its prefix, every
// chunk hits, and the tail write (one chunk's worth of bytes) is fixed-size
// noise, so per-item cost converges on hash + index probe per chunk.
// items/sec = chunk probes per second. Arg = prefix tokens (64/chunk).
void BM_PrefixLookup(benchmark::State& state) {
  StoreBenchSetup();
  StoreConfig config;
  config.dram_capacity = GiB(8);
  config.disk_capacity = 0;
  config.block_bytes = KiB(64);
  config.real_payloads = true;
  config.share_prefixes = true;
  config.share_chunk_tokens = 64;
  AttentionStore store(config);
  const SchedulerHints hints;
  const auto prefix_tokens = static_cast<std::size_t>(state.range(0));
  const std::uint64_t bytes_per_token = 64;  // small rows keep the tail write cheap
  std::vector<std::uint32_t> tokens(prefix_tokens);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = static_cast<std::uint32_t>(i * 2654435761u + 11u);
  }
  const std::vector<std::uint8_t> payload(prefix_tokens * bytes_per_token, 0xA5);
  SimTime now = 0;
  SpanChunkSource warm(payload, bytes_per_token);
  CA_CHECK(store.PutShared(1, tokens, warm, ++now, hints).ok());
  // Tail-nonempty rule: the last chunk of an exact multiple stays private,
  // so an N-chunk prefix probes the index N-1 times per put.
  const std::int64_t probes_per_put =
      static_cast<std::int64_t>(prefix_tokens / config.share_chunk_tokens) - 1;
  for (auto _ : state) {
    SpanChunkSource source(payload, bytes_per_token);
    benchmark::DoNotOptimize(store.PutShared(1, tokens, source, ++now, hints));
  }
  state.SetItemsProcessed(state.iterations() * probes_per_put);
}
BENCHMARK(BM_PrefixLookup)->Arg(1024)->Arg(8192);

// The checksum primitive itself: args are {bytes, use_avx2}. The AVX2 row
// is skipped (reported as 0 iterations) on machines without the ISA.
void BM_Checksum64(benchmark::State& state) {
  const bool use_avx2 = state.range(1) != 0;
  if (use_avx2 && !ChunkedHashAvx2Available()) {
    state.SkipWithError("AVX2 not available");
    return;
  }
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131u + 7u);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(internal::ChecksumWithKernel(data, use_avx2));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Checksum64)->Args({1 << 20, 0})->Args({1 << 20, 1})->Args({16 << 20, 1});

// The PR3 byte-serial FNV-1a this PR replaced, kept as the comparison
// baseline for BM_Checksum64 (this is the ~0.8 GB/s curve that sank
// BM_StorePayloadRoundTrip; DESIGN.md §14).
void BM_ChecksumFnv1aSerial(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131u + 7u);
  }
  for (auto _ : state) {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const std::uint8_t b : data) {
      h = (h ^ b) * 0x100000001B3ULL;
    }
    benchmark::DoNotOptimize(h);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ChecksumFnv1aSerial)->Arg(1 << 20);

// Observability overhead (DESIGN.md §11). The disabled case is the one the
// serving hot paths pay unconditionally: it must stay at the cost of a
// relaxed atomic load so instrumented code is free when tracing is off.
void BM_TraceSpanDisabled(benchmark::State& state) {
  Tracer::Get().Disable();
  Tracer::Get().Clear();
  std::uint64_t x = 0;
  for (auto _ : state) {
    CA_TRACE_SPAN("bench.span", "value", ++x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  Tracer::Get().Enable();
  Tracer::Get().Clear();
  std::uint64_t x = 0;
  for (auto _ : state) {
    CA_TRACE_SPAN("bench.span", "value", ++x);
    benchmark::DoNotOptimize(x);
    if (Tracer::Get().event_count() > (1U << 18)) {
      state.PauseTiming();
      Tracer::Get().Clear();  // stay clear of the per-thread buffer cap
      state.ResumeTiming();
    }
  }
  Tracer::Get().Disable();
  Tracer::Get().Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_MetricsCounterAdd(benchmark::State& state) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    counter.Add();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  MetricsRegistry registry;
  HistogramMetric& hist = registry.GetHistogram("bench.hist");
  double v = 0.0;
  for (auto _ : state) {
    hist.Observe(v += 0.5);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramObserve);

// Lock-order detector overhead (DESIGN.md §13). The disabled case is the
// contract: every Mutex::Lock in the codebase pays it unconditionally, so
// it must stay at one relaxed atomic load plus an untaken branch over a
// plain lock/unlock. Registered before BM_MutexLockDetectEnabled on
// purpose: enabling detection latches release-path bookkeeping on for the
// rest of the process (see g_deadlock_seen in src/common/mutex.h), so the
// disabled measurement must run first.
void BM_MutexLockDetectDisabled(benchmark::State& state) {
  SetDeadlockDetectEnabled(false);
  Mutex outer("bench.outer");
  Mutex inner("bench.inner");
  for (auto _ : state) {
    MutexLock lo(outer);
    MutexLock li(inner);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MutexLockDetectDisabled);

void BM_MutexLockDetectEnabled(benchmark::State& state) {
  SetDeadlockDetectEnabled(true);
  Mutex outer("bench.outer");
  Mutex inner("bench.inner");
  for (auto _ : state) {
    MutexLock lo(outer);
    MutexLock li(inner);
  }
  SetDeadlockDetectEnabled(false);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MutexLockDetectEnabled);

}  // namespace
}  // namespace ca

BENCHMARK_MAIN();
