// Figure 20: asynchronous KV-cache saving. Jobs with prompts of 1K-1.6K
// tokens and 20 decode steps (LLaMA-13B, 1 GPU, batch 16); synchronous
// saving blocks at job end, asynchronous saving overlaps the write-back
// with decoding.
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"
#include "src/sim/timing_model.h"

int main() {
  using namespace ca;
  bench::PrintHeader(
      "Figure 20 — asynchronous KV cache saving",
      "Total execution time (prefill + 20 decode steps + KV save) with synchronous vs "
      "asynchronous (overlapped) saving, prompts 1K-1.6K (LLaMA-13B, 1 GPU, batch 16).",
      "async saving reduces overall execution time by 13-15%.");

  ModelDescriptor model = ModelDescriptor::Llama13B();
  model.num_gpus = 1;
  const TimingModel tm(model, HardwareConfig::A100Node());
  constexpr std::uint64_t kBatch = 16;
  constexpr std::uint64_t kDecodeSteps = 20;

  Table table({"prompt tokens", "sync total (ms)", "async total (ms)", "reduction"});
  for (const std::uint64_t prompt : {1000ULL, 1200ULL, 1400ULL, 1600ULL}) {
    const SimTime prefill = tm.PrefillTime(prompt * kBatch);
    SimTime decode = 0;
    for (std::uint64_t i = 0; i < kDecodeSteps; ++i) {
      decode += tm.DecodeIterTime(kBatch, prompt + i);
    }
    const std::uint64_t save_bytes = tm.KvBytes((prompt + kDecodeSteps) * kBatch);
    // Synchronous: the full write-back blocks at the end of the job.
    const SimTime sync_total = prefill + decode + tm.SaveStall(save_bytes, 0, 0);
    // Asynchronous: the write stream runs during decoding; only the part
    // that does not fit the overlap window + write buffer stalls.
    const SimTime async_total =
        prefill + decode + tm.SaveStall(save_bytes, decode, GiB(1));
    table.AddRow({std::to_string(prompt), Table::Num(ToMilliseconds(sync_total)),
                  Table::Num(ToMilliseconds(async_total)),
                  Table::Percent(bench::Reduction(ToMilliseconds(async_total),
                                                  ToMilliseconds(sync_total)))});
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
