// Figure 18: recomputation vs CachedAttention when prefilling the same 1K
// prompt tokens with varying historical/new splits (LLaMA-13B, batch 16,
// 1 A100). Three bars per split: RE (compute all), CA without pre-loading
// (load + compute), CA with layer-wise pre-loading.
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"
#include "src/sim/timing_model.h"

int main() {
  using namespace ca;
  bench::PrintHeader(
      "Figure 18 — recomputation vs CachedAttention",
      "Prefill latency of 1K prompt tokens split into historical/new (LLaMA-13B, 1 GPU, "
      "batch 16). hist tokens are loaded (CA) or recomputed (RE).",
      "CA consistently beats RE and the advantage grows as the new-token share shrinks; "
      "pre-loading hides the KV loading time (read buffer covers the 900/100 case).");

  ModelDescriptor model = ModelDescriptor::Llama13B();
  model.num_gpus = 1;
  const TimingModel tm(model, HardwareConfig::A100Node());
  constexpr std::size_t kBatch = 16;

  Table table({"hist/new", "RE (ms)", "CA no-preload (ms)", "CA preload (ms)",
               "CA+buffer (ms)", "best speedup"});
  for (const std::uint64_t hist : {500ULL, 600ULL, 700ULL, 800ULL, 900ULL}) {
    const std::uint64_t fresh = 1000 - hist;
    // Batch of 16 sequences prefilled together: token counts scale by batch.
    const double re = ToMilliseconds(tm.PrefillTime(1000 * kBatch));
    const double ca_no_pl =
        ToMilliseconds(tm.OverlappedPrefill(hist * kBatch, fresh * kBatch, 0, false));
    const double ca_pl =
        ToMilliseconds(tm.OverlappedPrefill(hist * kBatch, fresh * kBatch, 0, true));
    const double ca_buf =
        ToMilliseconds(tm.OverlappedPrefill(hist * kBatch, fresh * kBatch, 64, true));
    table.AddRow({std::to_string(hist) + "/" + std::to_string(fresh), Table::Num(re),
                  Table::Num(ca_no_pl), Table::Num(ca_pl), Table::Num(ca_buf),
                  Table::Speedup(re / ca_buf)});
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
