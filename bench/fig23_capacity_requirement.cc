// Figure 23: cache capacity requirement. Sweeps the ratio of the
// configured capacity (RCC) to the per-unit-time demand ceiling CCpUT =
// DSpUT * CCpS (distinct sessions per TTL window x max KV bytes per
// session), with TTL = 1 hour, and reports hit rate and token throughput.
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"
#include "src/workload/arrivals.h"

int main() {
  using namespace ca;
  using namespace ca::bench;
  PrintHeader(
      "Figure 23 — cache capacity requirement",
      "Hit rate and end-to-end token throughput vs RCC/CCpUT (TTL = 1 h, LLaMA-13B). "
      "CCpUT = sessions-per-hour x context-window KV bytes.",
      "hit rate ~51% at ratio 0.1 and ~98% at 0.25, where throughput also peaks: real "
      "workloads need far less than the worst-case capacity.");

  const E2EConfig config = E2EConfig::FromEnv();
  // Capacity only binds when sessions can stay inactive for a meaningful
  // fraction of the TTL before returning: model users with 15-minute mean
  // pauses, and run 2x the standard session count so the system reaches a
  // steady state that spans several TTL-scale reuse distances.
  ShareGptConfig workload_config;
  workload_config.think_time_mean_s = 900.0;
  ShareGptGenerator generator(workload_config, config.seed);
  auto workload = generator.Generate(config.sessions * 2);
  AssignArrivals(workload, config.arrival_rate, config.seed + 1);
  const ModelDescriptor model = ModelDescriptor::Llama13B();

  // CCpUT: distinct sessions arriving per TTL window x max KV per session.
  const double sessions_per_hour = config.arrival_rate * 3600.0;
  const std::uint64_t ccps =
      static_cast<std::uint64_t>(model.context_window) * model.kv_bytes_per_token;
  const auto ccput = static_cast<std::uint64_t>(sessions_per_hour * static_cast<double>(ccps));
  std::printf("CCpS = %s, CCpUT = %s\n\n", FormatBytes(ccps).c_str(),
              FormatBytes(ccput).c_str());

  Table table({"RCC/CCpUT", "capacity", "hit rate", "throughput (tok/s)", "GPU time (h)"});
  for (const double ratio : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    const auto capacity = static_cast<std::uint64_t>(ratio * static_cast<double>(ccput));
    SimOptions options = PaperDefaults(model);
    options.store.ttl = kHour;
    // Split the budget: DRAM gets its paper share, the rest is disk.
    options.store.dram_capacity = std::min<std::uint64_t>(GiB(128), capacity / 8);
    options.store.dram_buffer = options.store.dram_capacity / 8;
    options.store.disk_capacity = capacity - options.store.dram_capacity;
    const SimMetrics m = Run(options, workload, config.warmup_fraction);
    table.AddRow({Table::Num(ratio), FormatBytes(capacity),
                  Table::Percent(m.store.hit_rate()), Table::Num(m.token_throughput(), 0),
                  Table::Num(ToSeconds(m.gpu_time()) / 3600.0)});
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
