// Figure 4: recomputation inefficiency. (a) Average historical vs new
// tokens by conversation turn; (b) GPU time to prefill all prompt tokens vs
// only the new tokens (Mistral-7B, 1 A100) — the gap is the repetitive
// computation CachedAttention eliminates.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/harness/harness.h"
#include "src/sim/timing_model.h"
#include "src/workload/sharegpt.h"

int main() {
  using namespace ca;
  bench::PrintHeader(
      "Figure 4 — recomputation inefficiency",
      "(a) historical vs new tokens per turn; (b) prefill GPU time for all tokens vs new "
      "tokens only (Mistral-7B, 1 A100).",
      "historical tokens exceed 99% of the prompt by ~turn 10; repetitive computation is "
      "up to 99% of prefilling time.");

  ShareGptGenerator generator(ShareGptConfig{}, 11);
  const auto sessions = generator.Generate(50000);

  constexpr std::size_t kMaxTurn = 12;
  std::vector<double> hist_sum(kMaxTurn, 0.0);
  std::vector<double> new_sum(kMaxTurn, 0.0);
  std::vector<double> count(kMaxTurn, 0.0);
  for (const auto& s : sessions) {
    std::uint64_t hist = 0;
    for (std::size_t j = 0; j < s.turns.size(); ++j) {
      if (j < kMaxTurn) {
        hist_sum[j] += static_cast<double>(hist);
        new_sum[j] += s.turns[j].q_tokens;
        count[j] += 1.0;
      }
      hist += s.turns[j].total();
    }
  }

  const TimingModel tm(ModelDescriptor::Mistral7B(), HardwareConfig::A100Node());
  Table table({"turn", "avg hist tokens", "avg new tokens", "hist %", "prefill all (ms)",
               "prefill new (ms)", "repetitive %"});
  for (std::size_t j = 0; j < kMaxTurn; ++j) {
    if (count[j] == 0) {
      continue;
    }
    const double hist = hist_sum[j] / count[j];
    const double fresh = new_sum[j] / count[j];
    const double t_all = ToMilliseconds(tm.PrefillTime(static_cast<std::uint64_t>(hist + fresh)));
    const double t_new = ToMilliseconds(tm.PrefillTime(static_cast<std::uint64_t>(fresh)));
    table.AddRow({std::to_string(j + 1), Table::Num(hist, 0), Table::Num(fresh, 0),
                  Table::Percent(hist / (hist + fresh)), Table::Num(t_all),
                  Table::Num(t_new), Table::Percent((t_all - t_new) / t_all)});
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
