// Figure 24: impact of caching storage mediums. HBM-only (10 GB, the
// LMDeploy/RadixAttention-style configuration) vs HBM+DRAM (128 GB) vs the
// full hierarchy with SSDs (10 TB), per model.
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"
#include "src/workload/arrivals.h"

int main() {
  using namespace ca;
  using namespace ca::bench;
  PrintHeader(
      "Figure 24 — caching storage mediums",
      "Hit rate and GPU time with HBM-only (10 GB) / HBM+DRAM (128 GB) / HBM+DRAM+SSD "
      "(10 TB) AttentionStore configurations, per model.",
      "HBM-only hit rate ~0%; +DRAM gives 3.4/1.7/7.7/19.1%; +SSD reaches 86/71/89/90% "
      "with correspondingly better inference performance.");

  const E2EConfig config = E2EConfig::FromEnv();
  // Long reuse distances (3 min mean pauses): a 10 GB HBM cache cannot hold
  // the inactive-session working set, which is the regime of §4.3.7.
  ShareGptConfig workload_config;
  workload_config.think_time_mean_s = 180.0;
  ShareGptGenerator generator(workload_config, config.seed);
  auto workload = generator.Generate(config.sessions);
  AssignArrivals(workload, config.arrival_rate, config.seed + 1);

  struct Setting {
    const char* label;
    std::uint64_t hbm, dram, disk;
  };
  const Setting settings[] = {
      {"HBM only", GiB(10), 0, 0},
      {"HBM+DRAM", GiB(10), GiB(128), 0},
      {"HBM+DRAM+SSD", GiB(10), GiB(128), TiB(10)},
  };

  Table table({"model", "configuration", "hit rate", "GPU time (h)"});
  for (const ModelDescriptor& model : ModelDescriptor::EvaluationSuite()) {
    for (const Setting& setting : settings) {
      SimOptions options = PaperDefaults(model);
      options.store.hbm_capacity = setting.hbm;
      options.store.dram_capacity = setting.dram;
      options.store.disk_capacity = setting.disk;
      options.store.dram_buffer = setting.dram > 0 ? GiB(16) : 0;
      const SimMetrics m = Run(options, workload, config.warmup_fraction);
      table.AddRow({model.name, setting.label, Table::Percent(m.store.hit_rate()),
                    Table::Num(ToSeconds(m.gpu_time()) / 3600.0)});
    }
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
