// Figure 19: layer-wise pre-loading with varying HBM read-buffer sizes
// (LLaMA-13B, 1 GPU, batch 16; 1K historical tokens, 100 new tokens).
// NO-PL = no pre-loading; PL-Bk = pre-loading with a k-layer read buffer.
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"
#include "src/sim/timing_model.h"

int main() {
  using namespace ca;
  bench::PrintHeader(
      "Figure 19 — pre-loading read-buffer sweep",
      "Prefill time for 1K historical + 100 new tokens (LLaMA-13B, 1 GPU, batch 16) under "
      "NO-PL and PL with read buffers of 0..20 layers.",
      "PL-B0 cuts prefill ~35% vs NO-PL; PL-B15 overlaps loading perfectly (~61% cut).");

  ModelDescriptor model = ModelDescriptor::Llama13B();
  model.num_gpus = 1;
  const TimingModel tm(model, HardwareConfig::A100Node());
  constexpr std::uint64_t kBatch = 16;
  const std::uint64_t hist = 1024 * kBatch;
  const std::uint64_t fresh = 100 * kBatch;

  const double no_pl = ToMilliseconds(tm.OverlappedPrefill(hist, fresh, 0, false));
  Table table({"scheme", "prefill (ms)", "reduction vs NO-PL"});
  table.AddRow({"NO-PL", Table::Num(no_pl), "-"});
  for (const std::size_t buf : {0UL, 1UL, 2UL, 5UL, 10UL, 15UL, 20UL}) {
    const double t = ToMilliseconds(tm.OverlappedPrefill(hist, fresh, buf, true));
    table.AddRow({"PL-B" + std::to_string(buf), Table::Num(t),
                  Table::Percent(bench::Reduction(t, no_pl))});
  }
  table.Print(std::cout);

  const std::uint64_t perfect = tm.PerfectReadBufferBytes(hist, fresh);
  std::printf("\nperfect-overlap buffer size (S_buf = B*(T_load*L_hist - T_pref*L_new)): %s\n\n",
              FormatBytes(perfect).c_str());
  return 0;
}
