// Figure 16: end-to-end GPU time to finish the workload, CachedAttention vs
// recomputation.
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"

int main() {
  using namespace ca;
  using namespace ca::bench;
  PrintHeader("Figure 16 — GPU time",
              "GPU busy time (prefill + decode + save stalls) over the measured window, CA "
              "vs RE per model.",
              "CA speedups of 4.0x (13B), 1.9x (65B), 3.3x (70B), 3.4x (Falcon-40B).");

  const E2EConfig config = E2EConfig::FromEnv();
  const char* paper[] = {"4.0x", "1.9x", "3.3x", "3.4x"};

  Table table({"model", "CA (h)", "RE (h)", "CA prefill (h)", "RE prefill (h)", "speedup",
               "paper"});
  int i = 0;
  for (const ModelDescriptor& model : ModelDescriptor::EvaluationSuite()) {
    const CaVsRe r = RunCaVsRe(model, config);
    const double ca_h = ToSeconds(r.ca.gpu_time()) / 3600.0;
    const double re_h = ToSeconds(r.re.gpu_time()) / 3600.0;
    table.AddRow({model.name, Table::Num(ca_h), Table::Num(re_h),
                  Table::Num(ToSeconds(r.ca.prefill_busy) / 3600.0),
                  Table::Num(ToSeconds(r.re.prefill_busy) / 3600.0),
                  Table::Speedup(re_h / ca_h), paper[i++]});
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
