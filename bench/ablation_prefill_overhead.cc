// Ablation: serving-stack prefill overhead vs the paper's Figure 16 GPU-time
// ratios.
//
// Our timing model calibrates prefill to the paper's §2.4 measurement
// (LLaMA-65B, 2K tokens, 360 ms on 4 A100s), i.e. an efficient kernel
// stack. Under that physics, decoding dominates GPU time and CachedAttention's
// GPU-time advantage is bounded near ~1.5x. The paper's reported 1.9-4.0x
// (Fig. 16) implies that in their PyTorch/Transformers executor the
// *recomputation prefill* is several times more expensive relative to decode.
// This ablation sweeps a prefill overhead multiplier to show where the
// paper's ratios emerge (LLaMA-13B and LLaMA-70B, standard workload).
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"

int main() {
  using namespace ca;
  using namespace ca::bench;
  PrintHeader(
      "Ablation — prefill-stack overhead vs GPU-time speedup",
      "CA-vs-RE GPU-time speedup as a function of the prefill inefficiency multiplier "
      "(1x = ideal kernels calibrated to the paper's 360 ms/2K-token figure).",
      "Fig. 16's 4.0x (13B) / 3.3x (70B) ratios correspond to a ~3-5x prefill-heavy "
      "serving stack.");

  const E2EConfig config = E2EConfig::FromEnv();
  const auto workload = BuildWorkload(config);

  Table table({"model", "prefill overhead", "CA GPU (h)", "RE GPU (h)", "speedup"});
  for (const ModelDescriptor& model :
       {ModelDescriptor::Llama13B(), ModelDescriptor::Llama70B()}) {
    for (const double overhead : {1.0, 2.0, 3.0, 5.0}) {
      SimOptions ca = PaperDefaults(model);
      ca.hw.prefill_overhead = overhead;
      SimOptions re = ca;
      re.mode = EngineMode::kRecompute;
      const SimMetrics m_ca = Run(ca, workload, config.warmup_fraction);
      const SimMetrics m_re = Run(re, workload, config.warmup_fraction);
      const double ca_h = ToSeconds(m_ca.gpu_time()) / 3600.0;
      const double re_h = ToSeconds(m_re.gpu_time()) / 3600.0;
      table.AddRow({model.name, Table::Speedup(overhead, 0), Table::Num(ca_h), Table::Num(re_h),
                    Table::Speedup(re_h / ca_h)});
    }
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
