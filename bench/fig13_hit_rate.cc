// Figure 13: end-to-end AttentionStore cache hit rate for the four
// evaluation models (128 GB DRAM + 10 TB SSD, ShareGPT workload, Poisson
// arrivals, warmup excluded).
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"

int main() {
  using namespace ca;
  using namespace ca::bench;
  PrintHeader("Figure 13 — cache hit rate",
              "Total KV cache hit rate (DRAM + disk split) per model under the end-to-end "
              "serving simulation.",
              "hit rates ~86% (13B), 71% (65B), 89% (70B), 90% (Falcon-40B); 65B is lowest "
              "because its 2.5 MB/token KV caches crowd the store.");

  const E2EConfig config = E2EConfig::FromEnv();
  const auto workload = BuildWorkload(config);
  const char* paper[] = {"86%", "71%", "89%", "90%"};

  Table table({"model", "hit rate", "DRAM hits", "disk hits", "paper total"});
  int i = 0;
  for (const ModelDescriptor& model : ModelDescriptor::EvaluationSuite()) {
    const SimMetrics m = Run(PaperDefaults(model), workload, config.warmup_fraction);
    table.AddRow({model.name, Table::Percent(m.store.hit_rate()),
                  Table::Percent(m.store.dram_hit_rate()),
                  Table::Percent(m.store.disk_hit_rate()), paper[i++]});
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
