// Figure 22: context-overflow management. CA (decoupled positional
// encoding: KV caches survive truncation) vs OF (coupled PE: every overflow
// invalidates the session's saved KV cache), per model.
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"

int main() {
  using namespace ca;
  using namespace ca::bench;
  PrintHeader(
      "Figure 22 — context overflow impact",
      "Hit rate and GPU time of CA vs the OF baseline (coupled PE, overflow invalidates "
      "cached KV), per model (128G/10T).",
      "OF loses 17.6/41.5/18.1/18.4 hit-rate points for 13B/65B/70B/Falcon-40B; 65B "
      "suffers most (2K window overflows after nearly every first turn).");

  const E2EConfig config = E2EConfig::FromEnv();
  const auto workload = BuildWorkload(config);

  Table table({"model", "CA hit", "OF hit", "hit drop", "CA GPU (h)", "OF GPU (h)",
               "truncated turns"});
  for (const ModelDescriptor& model : ModelDescriptor::EvaluationSuite()) {
    SimOptions ca = PaperDefaults(model);
    SimOptions of = PaperDefaults(model);
    of.decoupled_pe = false;
    const SimMetrics m_ca = Run(ca, workload, config.warmup_fraction);
    const SimMetrics m_of = Run(of, workload, config.warmup_fraction);
    table.AddRow({model.name, Table::Percent(m_ca.store.hit_rate()),
                  Table::Percent(m_of.store.hit_rate()),
                  Table::Percent(m_ca.store.hit_rate() - m_of.store.hit_rate()),
                  Table::Num(ToSeconds(m_ca.gpu_time()) / 3600.0),
                  Table::Num(ToSeconds(m_of.gpu_time()) / 3600.0),
                  std::to_string(m_ca.truncation_events)});
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
