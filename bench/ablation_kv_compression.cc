// Ablation: KV cache compression via token-discarding lists (§3.4 end).
//
// On the trained mini LM, compress a cached history with each TDL policy at
// several keep ratios, then measure the perplexity of the true continuation
// and the bytes saved. Attention-sink and importance-based TDLs should
// degrade gracefully; uniformly random discarding is the control.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"
#include "src/model/compression.h"
#include "src/model/eval.h"
#include "src/train/trained_lm.h"

namespace {

using namespace ca;

double CompressedNll(const TrainedLm& lm, const CompressionConfig& config,
                     std::span<const TokenId> history, std::span<const TokenId> continuation) {
  KvCache cache = lm.model.MakeCache(PeMode::kDecoupled);
  AttentionMassAccumulator mass;
  (void)lm.model.Forward(history, cache, &mass);
  (void)CompressCache(config, cache, mass.mass());
  return ContinuationNll(lm.model, continuation, cache);
}

}  // namespace

int main() {
  using namespace ca;
  bench::PrintHeader(
      "Ablation — KV cache compression (token-discarding lists)",
      "Perplexity of the true continuation after compressing the cached history with each "
      "TDL policy (trained mini LM; sinks=4, recents=16; averaged over streams), plus the "
      "KV bytes saved. The corpus is order-2 Markov, so policies that keep the recent "
      "window should lose almost nothing — the point is that the compressed, "
      "position-re-embedded caches stay VALID while shrinking AttentionStore footprint.",
      "§3.4: AttentionStore complies with any TDL; decoupled PE keeps compressed caches "
      "valid.");

  const TrainedLm& lm = GetTrainedLm();
  Rng rng(31337);
  // Stay within the model's trained sequence length (48): this measures
  // information loss from discarding, not RoPE length extrapolation.
  const std::size_t hist_len = 40;
  const std::size_t cont_len = 8;
  const int kStreams = 32;

  struct PolicySetting {
    const char* label;
    CompressionPolicy policy;
    double keep;
  };
  const PolicySetting settings[] = {
      {"none (full cache)", CompressionPolicy::kNone, 1.0},
      {"importance keep 50%", CompressionPolicy::kImportance, 0.5},
      {"random keep 50%", CompressionPolicy::kRandom, 0.5},
      {"importance keep 25%", CompressionPolicy::kImportance, 0.25},
      {"random keep 25%", CompressionPolicy::kRandom, 0.25},
      {"attention-sink only", CompressionPolicy::kAttentionSink, 0.0},
  };

  // Pre-draw the evaluation streams so every policy sees the same data.
  std::vector<std::vector<TokenId>> streams;
  for (int s = 0; s < kStreams; ++s) {
    streams.push_back(lm.corpus.Sample(hist_len + cont_len, rng));
  }

  Table table({"policy", "kept tokens", "KV bytes saved", "PPL"});
  for (const PolicySetting& setting : settings) {
    CompressionConfig config;
    config.policy = setting.policy;
    config.sink_tokens = 4;
    config.recent_tokens = 16;
    config.middle_keep_ratio = setting.keep;
    config.seed = 99;

    double nll = 0.0;
    std::size_t kept_tokens = 0;
    for (const auto& stream : streams) {
      const std::span<const TokenId> history{stream.data(), hist_len};
      const std::span<const TokenId> continuation{stream.data() + hist_len, cont_len};
      nll += CompressedNll(lm, config, history, continuation);
      kept_tokens +=
          hist_len - BuildTokenDiscardList(config, hist_len, std::vector<float>(hist_len, 0.f))
                         .size();
    }
    nll /= kStreams;
    kept_tokens /= kStreams;
    const double saved_fraction =
        1.0 - static_cast<double>(kept_tokens) / static_cast<double>(hist_len);
    table.AddRow({setting.label, std::to_string(kept_tokens),
                  Table::Percent(saved_fraction), Table::Num(std::exp(nll))});
  }
  table.Print(std::cout);
  std::printf("\n(uniform-guessing PPL would be %.1f)\n\n",
              static_cast<double>(lm.config.vocab_size));
  return 0;
}
