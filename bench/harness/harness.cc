#include "bench/harness/harness.h"

#include <cstdio>
#include <cstdlib>

#include "src/workload/arrivals.h"

namespace ca::bench {

namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::strtod(v, nullptr);
}

}  // namespace

E2EConfig E2EConfig::FromEnv() {
  E2EConfig config;
  config.sessions = EnvSize("CA_BENCH_SESSIONS", config.sessions);
  config.arrival_rate = EnvDouble("CA_BENCH_ARRIVAL_RATE", config.arrival_rate);
  config.seed = EnvSize("CA_BENCH_SEED", config.seed);
  return config;
}

std::vector<SessionTrace> BuildWorkload(const E2EConfig& config) {
  ShareGptGenerator generator(ShareGptConfig{}, config.seed);
  auto workload = generator.Generate(config.sessions);
  AssignArrivals(workload, config.arrival_rate, config.seed + 1);
  return workload;
}

std::size_t TotalTurns(const std::vector<SessionTrace>& workload) {
  std::size_t turns = 0;
  for (const auto& session : workload) {
    turns += session.turns.size();
  }
  return turns;
}

SimOptions PaperDefaults(const ModelDescriptor& model) {
  SimOptions options;
  options.mode = EngineMode::kCachedAttention;
  options.model = model;
  options.store.dram_capacity = GiB(128);
  options.store.disk_capacity = TiB(10);
  options.store.dram_buffer = GiB(16);
  options.store.block_bytes = MiB(16);
  options.store.eviction_policy = "scheduler-aware";
  return options;
}

SimMetrics Run(SimOptions options, const std::vector<SessionTrace>& workload,
               double warmup_fraction) {
  options.warmup_turns =
      static_cast<std::size_t>(warmup_fraction * static_cast<double>(TotalTurns(workload)));
  return ClusterSim(options, workload).Run();
}

CaVsRe RunCaVsRe(const ModelDescriptor& model, const E2EConfig& config) {
  const auto workload = BuildWorkload(config);
  CaVsRe result;
  SimOptions ca = PaperDefaults(model);
  result.ca = Run(ca, workload, config.warmup_fraction);
  SimOptions re = PaperDefaults(model);
  re.mode = EngineMode::kRecompute;
  result.re = Run(re, workload, config.warmup_fraction);
  return result;
}

void PrintHeader(const std::string& experiment, const std::string& description,
                 const std::string& paper_result) {
  std::printf("=== %s ===\n%s\nPaper reports: %s\n\n", experiment.c_str(), description.c_str(),
              paper_result.c_str());
}

double Reduction(double a, double b) { return b == 0.0 ? 0.0 : (b - a) / b; }

}  // namespace ca::bench
