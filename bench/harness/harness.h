// Shared harness for the figure/table reproduction benches.
//
// Each bench binary reproduces one table or figure from the paper
// (DESIGN.md carries the full index). The harness centralises the common
// pieces: the scaled ShareGPT-like workload, the paper's storage defaults
// (128 GB DRAM + 10 TB SSD, scheduler-aware policy), CA-vs-RE comparison
// runs, and uniform output formatting.
//
// Scale knobs (environment):
//   CA_BENCH_SESSIONS      sessions per end-to-end run   (default 2250;
//                          the paper uses 9000 — set 9000 for full scale)
//   CA_BENCH_ARRIVAL_RATE  Poisson session arrival rate  (default 1.0/s)
//   CA_BENCH_SEED          workload seed                 (default 42)
#ifndef CA_BENCH_HARNESS_HARNESS_H_
#define CA_BENCH_HARNESS_HARNESS_H_

#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/sim/cluster_sim.h"
#include "src/workload/sharegpt.h"

namespace ca::bench {

struct E2EConfig {
  std::size_t sessions = 2250;
  double arrival_rate = 0.35;
  double warmup_fraction = 0.2;
  std::uint64_t seed = 42;

  // Reads the CA_BENCH_* environment overrides.
  static E2EConfig FromEnv();
};

// Builds the ShareGPT-like workload with Poisson arrivals.
std::vector<SessionTrace> BuildWorkload(const E2EConfig& config);

std::size_t TotalTurns(const std::vector<SessionTrace>& workload);

// SimOptions matching the paper's testbed defaults for `model`:
// 128 GiB DRAM / 10 TiB SSD AttentionStore, scheduler-aware policy with a
// 16 GiB fetch buffer, layer-wise pre-loading, asynchronous saving.
SimOptions PaperDefaults(const ModelDescriptor& model);

// Runs one simulation with warmup_fraction of the turns as warmup.
SimMetrics Run(SimOptions options, const std::vector<SessionTrace>& workload,
               double warmup_fraction);

struct CaVsRe {
  SimMetrics ca;
  SimMetrics re;
};

// Runs CachedAttention and the recomputation baseline on the same workload.
CaVsRe RunCaVsRe(const ModelDescriptor& model, const E2EConfig& config);

// Uniform bench banner: figure id, what it reproduces, what the paper
// reports (so the output is self-describing next to EXPERIMENTS.md).
void PrintHeader(const std::string& experiment, const std::string& description,
                 const std::string& paper_result);

// Percentage reduction a vs b: (b - a) / b.
double Reduction(double a, double b);

}  // namespace ca::bench

#endif  // CA_BENCH_HARNESS_HARNESS_H_
