// Table 1: perplexity of the three context-overflow schemes on the trained
// mini LM (the substitution for WikiText-2/PTB/C4 on LLaMA-7B/13B — see
// DESIGN.md):
//   CA   — decoupled-PE KV cache truncation, positions re-embedded;
//   TT   — token truncation + full recomputation (the quality reference);
//   NKVT — naive truncation of a coupled-PE cache (positions scrambled).
// The paper's shape: CA ~= TT (difference < 0.02 PPL at their scale), NKVT
// catastrophically worse (>10^3).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"
#include "src/model/eval.h"
#include "src/train/trained_lm.h"

int main() {
  using namespace ca;
  bench::PrintHeader(
      "Table 1 — perplexity under the truncation schemes",
      "PPL of model-on-corpus continuations after forced context overflow + truncation, "
      "averaged over independent streams (trained mini LM on an order-2 Markov corpus; "
      "corpus entropy gives the attainable floor).",
      "CA ~= TT (5.47 vs 5.48 on WikiText-2/LLaMA-7B); NKVT explodes (2198.7).");

  const TrainedLm& lm = GetTrainedLm();
  Rng rng(12345);
  const std::size_t hist = 96;
  const std::size_t drop = 48;
  const std::size_t cont = 24;
  const int kStreams = 24;

  double nll_ca = 0.0;
  double nll_tt = 0.0;
  double nll_nkvt = 0.0;
  for (int s = 0; s < kStreams; ++s) {
    const auto stream = lm.corpus.Sample(hist + cont, rng);
    const std::vector<TokenId> history(stream.begin(), stream.begin() + hist);
    const std::vector<TokenId> tt_hist(history.begin() + drop, history.end());
    const std::vector<TokenId> continuation(stream.begin() + hist, stream.end());

    KvCache tt_cache = lm.model.MakeCache(PeMode::kDecoupled);
    (void)lm.model.Forward(tt_hist, tt_cache);
    nll_tt += ContinuationNll(lm.model, continuation, tt_cache);

    KvCache ca_cache = lm.model.MakeCache(PeMode::kDecoupled);
    (void)lm.model.Forward(history, ca_cache);
    ca_cache.TruncateFront(drop);
    nll_ca += ContinuationNll(lm.model, continuation, ca_cache);

    KvCache nkvt_cache = lm.model.MakeCache(PeMode::kCoupled);
    (void)lm.model.Forward(history, nkvt_cache);
    nkvt_cache.TruncateFront(drop);
    nll_nkvt += ContinuationNll(lm.model, continuation, nkvt_cache);
  }
  nll_ca /= kStreams;
  nll_tt /= kStreams;
  nll_nkvt /= kStreams;

  Rng erng(999);
  const double entropy = lm.corpus.EstimateEntropy(8000, erng);
  const double uniform = std::log(static_cast<double>(lm.config.vocab_size));

  Table table({"scheme", "PPL", "NLL (nats/token)"});
  table.AddRow({"CA  (KV truncation, decoupled PE)", Table::Num(NllToPerplexity(nll_ca)),
                Table::Num(nll_ca, 3)});
  table.AddRow({"TT  (token truncation + recompute)", Table::Num(NllToPerplexity(nll_tt)),
                Table::Num(nll_tt, 3)});
  table.AddRow({"NKVT (naive KV truncation)", Table::Num(NllToPerplexity(nll_nkvt)),
                Table::Num(nll_nkvt, 3)});
  table.AddRow({"(corpus entropy floor)", Table::Num(std::exp(entropy)), Table::Num(entropy, 3)});
  table.AddRow({"(uniform / broken model)", Table::Num(std::exp(uniform)),
                Table::Num(uniform, 3)});
  table.Print(std::cout);

  std::printf("\nCA-vs-TT PPL gap: %.3f; NKVT/TT PPL ratio: %.1fx\n\n",
              std::fabs(NllToPerplexity(nll_ca) - NllToPerplexity(nll_tt)),
              NllToPerplexity(nll_nkvt) / NllToPerplexity(nll_tt));
  return 0;
}
