// Figure 21: scheduler-aware eviction/fetching vs LRU and FIFO under two
// storage configurations (128G/2T and 128G/10T), LLaMA-13B. History-only
// policies cannot prefetch (no future knowledge), so their hits land on
// disk; the scheduler-aware policy converts upcoming accesses to DRAM hits.
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"
#include "src/workload/arrivals.h"

int main() {
  using namespace ca;
  using namespace ca::bench;
  PrintHeader(
      "Figure 21 — eviction policy comparison",
      "Hit rates (total, DRAM, disk) and GPU time for scheduler-aware (CA) vs LRU vs FIFO "
      "under 128G/2T and 128G/10T storage (LLaMA-13B).",
      "128G/2T: CA beats LRU/FIFO by 27%/31% overall; 128G/10T: CA 86% vs LRU 58% / FIFO "
      "48%, with LRU/FIFO DRAM hit rates ~0.5% and CA hits >99% in DRAM. CA GPU-time "
      "speedup up to 2.7x.");

  const E2EConfig config = E2EConfig::FromEnv();
  // Policy choice only matters when reuse distances exceed DRAM residency;
  // model users with long pauses between turns (3 min mean think time) so
  // returning sessions find their KV demoted — the regime of the paper's
  // Fig. 21 (LRU/FIFO DRAM hit rates collapse to ~0.5%).
  // A loaded queue gives the prefetcher lead time (fetches must start
  // before dispatch); run at 2 sessions/s.
  ShareGptConfig workload_config;
  workload_config.think_time_mean_s = 180.0;
  // Capacity pressure needs the *live* session set to exceed the disk
  // tier, which takes paper-scale session counts: use 4x the standard
  // bench scale (9000 sessions at the default).
  ShareGptGenerator generator(workload_config, config.seed);
  auto workload = generator.Generate(config.sessions * 4);
  AssignArrivals(workload, 2.0, config.seed + 1);

  struct StorageSetting {
    const char* label;
    std::uint64_t disk;
  };
  const StorageSetting settings[] = {{"128G/2T", TiB(2)}, {"128G/10T", TiB(10)}};
  const char* policies[] = {"scheduler-aware", "lru", "fifo"};

  Table table({"storage", "policy", "hit rate", "DRAM hits", "disk hits", "GPU time (h)"});
  for (const StorageSetting& setting : settings) {
    for (const char* policy : policies) {
      SimOptions options = PaperDefaults(ModelDescriptor::Llama13B());
      options.store.disk_capacity = setting.disk;
      options.store.eviction_policy = policy;
      // Scheduler-aware fetching is part of the scheduler-aware design;
      // LRU/FIFO have no future knowledge to prefetch with (§4.3.3).
      options.prefetch_enabled = std::string(policy) == "scheduler-aware";
      const SimMetrics m = Run(options, workload, config.warmup_fraction);
      table.AddRow({setting.label, policy, Table::Percent(m.store.hit_rate()),
                    Table::Percent(m.store.dram_hit_rate()),
                    Table::Percent(m.store.disk_hit_rate()),
                    Table::Num(ToSeconds(m.gpu_time()) / 3600.0)});
    }
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
