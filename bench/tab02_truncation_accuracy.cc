// Table 2: task accuracy under the truncation schemes on the trained mini
// LM (the substitution for MMLU/LongEval/PIQA — see DESIGN.md). The task is
// ground-truth next-token prediction on the Markov corpus: after a long
// history that forces overflow + truncation, the model must keep predicting
// the modal successor of each state (the Bayes-optimal answer it learned).
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"
#include "src/model/eval.h"
#include "src/train/trained_lm.h"

namespace {

using namespace ca;

struct SchemeAccuracy {
  double vs_truth = 0.0;  // top-1 accuracy against the corpus's modal successor
  double vs_tt = 0.0;     // agreement with the TT reference prediction
};

}  // namespace

int main() {
  using namespace ca;
  bench::PrintHeader(
      "Table 2 — accuracy under the truncation schemes",
      "Next-token accuracy against the corpus's Bayes-optimal answer after forced overflow "
      "and truncation (trained mini LM), plus agreement with the TT reference.",
      "CA ~= TT (e.g. 66.0% vs 65.9% LongEval/LLaMA-7B); NKVT collapses (12.0%).");

  const TrainedLm& lm = GetTrainedLm();
  Rng rng(777);
  const std::size_t hist = 96;
  const std::size_t drop = 48;
  const int kProbes = 120;

  int correct_ca = 0;
  int correct_tt = 0;
  int correct_nkvt = 0;
  int agree_ca = 0;
  int agree_nkvt = 0;
  for (int p = 0; p < kProbes; ++p) {
    // One on-distribution stream; the question is "what follows the last
    // two tokens", whose Bayes answer is the modal successor.
    const auto stream = lm.corpus.Sample(hist + 2, rng);
    const std::vector<TokenId> history(stream.begin(), stream.begin() + hist);
    const std::vector<TokenId> tt_hist(history.begin() + drop, history.end());
    const std::vector<TokenId> probe(stream.begin() + hist, stream.end());
    const TokenId truth = lm.corpus.BestNext(probe[0], probe[1]);

    KvCache tt_cache = lm.model.MakeCache(PeMode::kDecoupled);
    (void)lm.model.Forward(tt_hist, tt_cache);
    const TokenId tt_next = PredictNext(lm.model, probe, tt_cache);

    KvCache ca_cache = lm.model.MakeCache(PeMode::kDecoupled);
    (void)lm.model.Forward(history, ca_cache);
    ca_cache.TruncateFront(drop);
    const TokenId ca_next = PredictNext(lm.model, probe, ca_cache);

    KvCache nkvt_cache = lm.model.MakeCache(PeMode::kCoupled);
    (void)lm.model.Forward(history, nkvt_cache);
    nkvt_cache.TruncateFront(drop);
    const TokenId nkvt_next = PredictNext(lm.model, probe, nkvt_cache);

    correct_tt += tt_next == truth ? 1 : 0;
    correct_ca += ca_next == truth ? 1 : 0;
    correct_nkvt += nkvt_next == truth ? 1 : 0;
    agree_ca += ca_next == tt_next ? 1 : 0;
    agree_nkvt += nkvt_next == tt_next ? 1 : 0;
  }

  auto pct = [&](int n) { return Table::Percent(static_cast<double>(n) / kProbes); };
  Table table({"scheme", "accuracy vs ground truth", "agreement with TT"});
  table.AddRow({"CA  (KV truncation, decoupled PE)", pct(correct_ca), pct(agree_ca)});
  table.AddRow({"TT  (token truncation + recompute)", pct(correct_tt), "100.0%"});
  table.AddRow({"NKVT (naive KV truncation)", pct(correct_nkvt), pct(agree_nkvt)});
  table.AddRow({"(chance)", Table::Percent(1.0 / static_cast<double>(lm.config.vocab_size)),
                "-"});
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
