// Figure 15: prompt prefilling throughput, CachedAttention vs
// recomputation. Throughput counts full prompt tokens (historical tokens
// are "served" from the cache) per second of prefill GPU time.
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"

int main() {
  using namespace ca;
  using namespace ca::bench;
  PrintHeader("Figure 15 — prefill throughput",
              "Prompt-token prefilling throughput of CA vs RE per model.",
              "CA speedups of 6.8x (13B), 2.6x (65B), 7.8x (70B), 7.2x (Falcon-40B).");

  const E2EConfig config = E2EConfig::FromEnv();
  const char* paper[] = {"6.8x", "2.6x", "7.8x", "7.2x"};

  Table table({"model", "CA (tok/s)", "RE (tok/s)", "speedup", "paper"});
  int i = 0;
  for (const ModelDescriptor& model : ModelDescriptor::EvaluationSuite()) {
    const CaVsRe r = RunCaVsRe(model, config);
    table.AddRow({model.name, Table::Num(r.ca.prefill_throughput(), 0),
                  Table::Num(r.re.prefill_throughput(), 0),
                  Table::Speedup(r.ca.prefill_throughput() / r.re.prefill_throughput()),
                  paper[i++]});
  }
  table.Print(std::cout);
  std::printf("\n");
  return 0;
}
