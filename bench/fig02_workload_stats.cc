// Figure 2: ShareGPT conversation-turn and session-length distributions.
// Draws 90K synthetic sessions (the dataset's size) and reports the
// marginals the paper quotes in §2.3/§2.4.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/harness/harness.h"
#include "src/common/stats.h"
#include "src/workload/sharegpt.h"

int main() {
  using namespace ca;
  bench::PrintHeader(
      "Figure 2 — workload distributions",
      "Turn-count distribution (2a) and session token-length distribution (2b) of the "
      "synthetic ShareGPT-like workload (90K sessions).",
      "73% of conversations are multi-turn; mean 5.75 turns; 47% of sessions exceed 2K "
      "tokens and 30% exceed 4K.");

  ShareGptGenerator generator(ShareGptConfig{}, 7);
  const auto sessions = generator.Generate(90000);
  const WorkloadSummary summary = Summarize(sessions);

  Table marginals({"metric", "measured", "paper"});
  marginals.AddRow({"multi-turn fraction", Table::Percent(summary.multi_turn_fraction), "73%"});
  marginals.AddRow({"mean turns / session", Table::Num(summary.mean_turns), "5.75"});
  marginals.AddRow({"sessions > 2K tokens", Table::Percent(summary.frac_sessions_over_2k),
                    "47%"});
  marginals.AddRow({"sessions > 4K tokens", Table::Percent(summary.frac_sessions_over_4k),
                    "30%"});
  marginals.Print(std::cout);

  // Fig 2a: turn-count histogram (buckets of 4, up to 40 as displayed).
  std::printf("\nFig 2a — conversation turn distribution:\n");
  Histogram turn_hist(1.0, 41.0, 10);
  for (const auto& s : sessions) {
    turn_hist.Add(static_cast<double>(s.turns.size()));
  }
  std::printf("%s", turn_hist.ToAsciiArt(48).c_str());

  // Fig 2b: session length histogram (buckets of 2K, up to 32K).
  std::printf("\nFig 2b — session token-length distribution:\n");
  Histogram len_hist(0.0, 32768.0, 16);
  for (const auto& s : sessions) {
    len_hist.Add(static_cast<double>(std::min<std::uint32_t>(s.total_tokens(), 32767)));
  }
  std::printf("%s\n", len_hist.ToAsciiArt(48).c_str());
  return 0;
}
