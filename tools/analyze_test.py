#!/usr/bin/env python3
"""Unit tests for tools/analyze.py: each rule must fire on a seeded violation
and stay quiet on a clean miniature tree, so the analyze CTest is verified
rather than decorative. Stdlib only; wired into CTest as `analyze_selftest`."""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import analyze  # noqa: E402


CLEAN_HEADER = """\
#ifndef CA_STORE_WIDGET_H_
#define CA_STORE_WIDGET_H_
namespace ca {}
#endif  // CA_STORE_WIDGET_H_
"""

CLEAN_SOURCE = """\
#include "src/store/widget.h"
namespace ca {
int Widget() { return 42; }  // "new" in a comment or string is fine: new
}
"""


class AnalyzeTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        self.store = self.root / "src" / "store"
        self.store.mkdir(parents=True)
        self.write("widget.h", CLEAN_HEADER)
        self.write("widget.cc", CLEAN_SOURCE)
        self.write("CMakeLists.txt", "add_library(ca_store widget.cc)\n")

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, name, text):
        (self.store / name).write_text(text)

    def write_layer(self, layer, name, text):
        d = self.root / "src" / layer
        d.mkdir(exist_ok=True)
        (d / name).write_text(text)
        cmake = d / "CMakeLists.txt"
        if not cmake.exists():
            cmake.write_text(f"add_library(ca_{layer} {name})\n")
        elif name not in cmake.read_text():
            cmake.write_text(cmake.read_text() + f"# {name}\n")

    def rules(self):
        return {v.rule for v in analyze.run_analysis(self.root)}

    def test_clean_tree_passes(self):
        self.assertEqual(analyze.run_analysis(self.root), [])

    # ---- header-guard ----

    def test_wrong_header_guard_fails(self):
        self.write("widget.h", CLEAN_HEADER.replace("CA_STORE_WIDGET_H_", "WIDGET_H"))
        self.assertIn("header-guard", self.rules())

    def test_missing_header_guard_fails(self):
        self.write("widget.h", "namespace ca {}\n")
        self.assertIn("header-guard", self.rules())

    def test_guard_derivation(self):
        self.assertEqual(
            analyze.expected_guard(pathlib.PurePath("src/common/thread_pool.h")),
            "CA_COMMON_THREAD_POOL_H_",
        )
        self.assertEqual(
            analyze.expected_guard(pathlib.PurePath("src/store/types.h")),
            "CA_STORE_TYPES_H_",
        )

    # ---- no-cout ----

    def test_cout_fails(self):
        self.write("widget.cc", '#include <iostream>\nvoid F() { std::cout << "x"; }\n')
        self.assertIn("no-cout", self.rules())

    def test_cout_allowed_in_logging(self):
        self.write_layer("common", "logging.cc", 'void F() { std::cout << "x"; }\n')
        self.assertNotIn("no-cout", self.rules())

    # ---- naked-new ----

    def test_naked_new_fails(self):
        self.write("widget.cc", "int* F() { return new int(1); }\n")
        self.assertIn("naked-new", self.rules())

    def test_new_in_comment_or_string_ok(self):
        self.write("widget.cc", 'const char* F() { return "new"; }  // the new path\n')
        self.assertNotIn("naked-new", self.rules())

    # ---- no-assert ----

    def test_assert_fails(self):
        self.write("widget.cc", "#include <cassert>\nvoid F(int x) { assert(x > 0); }\n")
        self.assertIn("no-assert", self.rules())

    def test_static_assert_ok(self):
        self.write("widget.cc", "static_assert(sizeof(int) == 4);\n")
        self.assertNotIn("no-assert", self.rules())

    # ---- cmake-listed ----

    def test_unlisted_cc_fails(self):
        self.write("orphan.cc", "namespace ca {}\n")
        self.assertIn("cmake-listed", self.rules())

    # ---- check-on-status (now repo-wide) ----

    def test_check_on_status_fails_in_store(self):
        self.write("widget.cc", "void F() { CA_CHECK(extent.ok()); }\n")
        self.assertIn("check-on-status", self.rules())

    def test_check_ok_fails_in_store(self):
        self.write("widget.cc", "void F() { CA_CHECK_OK(store.Put(1)); }\n")
        self.assertIn("check-on-status", self.rules())

    def test_check_on_status_fires_on_status_accessor(self):
        self.write("widget.cc", "void F() { CA_CHECK_EQ(r.status().code(), code); }\n")
        self.assertIn("check-on-status", self.rules())

    def test_check_on_plain_invariant_ok(self):
        self.write("widget.cc", "void F() { CA_CHECK(ptr != nullptr); }\n")
        self.assertNotIn("check-on-status", self.rules())

    def test_check_on_status_fires_outside_io_path_too(self):
        # The pass is repo-wide now: src/model is no longer exempt.
        self.write_layer("model", "layer.cc", "void F() { CA_CHECK(extent.ok()); }\n")
        self.assertIn("check-on-status", self.rules())

    def test_check_on_status_fires_across_wrapped_lines(self):
        # clang-format wraps long conditions; the Status accessor landing on
        # a continuation line must still be caught.
        self.write(
            "widget.cc",
            "void F() {\n"
            "  CA_CHECK(submission_queue.Drain(\n"
            "               pending_completions)\n"
            "               .ok());\n"
            "}\n",
        )
        self.assertIn("check-on-status", self.rules())

    def test_check_on_status_window_stops_at_statement_end(self):
        # The .ok() in the *next* statement must not implicate the CA_CHECK.
        self.write(
            "widget.cc",
            "void F() {\n"
            "  CA_CHECK(count > 0);\n"
            "  if (!result.ok()) { return; }\n"
            "}\n",
        )
        self.assertNotIn("check-on-status", self.rules())

    def test_check_on_status_fires_on_recovery_path(self):
        # Recovery returns Status by design (DESIGN.md §15): a corrupt
        # journal must degrade to misses or a reported error, never an
        # abort. Asserting the Status away defeats exactly that.
        self.write("widget.cc", "void F() { CA_CHECK(meta->Replay().ok()); }\n")
        self.assertIn("check-on-status", self.rules())

    def test_check_on_status_fires_on_fallible_open(self):
        self.write(
            "widget.cc",
            "void F() {\n"
            "  auto opened = AttentionStore::Open(config);\n"
            "  CA_CHECK(opened.ok());\n"
            "}\n",
        )
        self.assertIn("check-on-status", self.rules())

    def test_return_if_error_on_recovery_ok(self):
        # The sanctioned shape: propagate, do not assert.
        self.write(
            "widget.cc",
            "Status F() {\n"
            "  CA_RETURN_IF_ERROR(meta->Replay());\n"
            "  return Status::Ok();\n"
            "}\n",
        )
        self.assertNotIn("check-on-status", self.rules())

    def test_check_on_status_exempt_in_check_impl(self):
        self.write_layer(
            "common", "check.h",
            "#ifndef CA_COMMON_CHECK_H_\n#define CA_COMMON_CHECK_H_\n"
            "#define CA_CHECK_OK(expr) CA_CHECK((expr).ok())\n#endif  // CA_COMMON_CHECK_H_\n")
        self.assertNotIn("check-on-status", self.rules())

    # ---- no-raw-clock ----

    def test_raw_clock_fails_in_store(self):
        self.write(
            "widget.cc",
            "void F() { auto t = std::chrono::steady_clock::now(); (void)t; }\n",
        )
        self.assertIn("no-raw-clock", self.rules())

    def test_raw_clock_ignored_outside_io_path(self):
        self.write_layer(
            "model", "layer.cc",
            "void F() { auto t = std::chrono::steady_clock::now(); (void)t; }\n")
        self.assertNotIn("no-raw-clock", self.rules())

    def test_sleep_for_duration_ok(self):
        self.write(
            "widget.cc",
            "void F() { std::this_thread::sleep_for(std::chrono::microseconds(5)); }\n",
        )
        self.assertNotIn("no-raw-clock", self.rules())

    # ---- include-layering ----

    def test_upward_include_fails(self):
        self.write("widget.cc", '#include "src/core/engine.h"\nnamespace ca {}\n')
        self.assertIn("include-layering", self.rules())

    def test_downward_include_ok(self):
        self.write("widget.cc", '#include "src/common/status.h"\nnamespace ca {}\n')
        self.assertNotIn("include-layering", self.rules())

    def test_same_layer_include_ok(self):
        self.write("widget.cc", '#include "src/store/widget.h"\nnamespace ca {}\n')
        self.assertNotIn("include-layering", self.rules())

    def test_unknown_layer_fails(self):
        self.write_layer("gadgets", "g.cc", '#include "src/common/status.h"\n')
        self.assertIn("include-layering", self.rules())

    def test_layering_nolint_suppresses(self):
        self.write(
            "widget.cc",
            '#include "src/core/engine.h"  // NOLINT(include-layering)\n')
        self.assertNotIn("include-layering", self.rules())

    def test_cluster_may_include_serve(self):
        self.write_layer(
            "cluster", "router.cc",
            '#include "src/serve/serving_loop.h"\nnamespace ca {}\n')
        self.assertNotIn("include-layering", self.rules())

    def test_serve_may_not_include_cluster(self):
        self.write_layer(
            "serve", "loop.cc",
            '#include "src/cluster/shard_router.h"\nnamespace ca {}\n')
        self.assertIn("include-layering", self.rules())

    def test_sim_may_include_cluster(self):
        self.write_layer(
            "sim", "fleet.cc",
            '#include "src/cluster/hash_ring.h"\nnamespace ca {}\n')
        self.assertNotIn("include-layering", self.rules())

    def test_layer_map_is_a_dag(self):
        # Every dependency resolves to a mapped layer, and no layer can
        # reach itself through the map (acyclicity).
        for layer, deps in analyze.LAYER_DEPS.items():
            for dep in deps:
                self.assertIn(dep, analyze.LAYER_DEPS, f"{layer} -> {dep}")

        def reaches(frm, target, seen):
            for dep in analyze.LAYER_DEPS[frm]:
                if dep == target or (dep not in seen and not seen.add(dep)
                                     and reaches(dep, target, seen)):
                    return True
            return False

        for layer in analyze.LAYER_DEPS:
            self.assertFalse(reaches(layer, layer, set()), f"cycle through {layer}")

    # ---- guarded-field ----

    GUARDED_CLASS = """\
#include "src/common/mutex.h"
namespace ca {
class Widget {
 public:
  Widget();
  Widget(const Widget&) = delete;
  Widget& operator=(const Widget&) = delete;
  int Get() const { return x_; }
 private:
  mutable Mutex mu_;
  CondVar cv_;
  int x_ CA_GUARDED_BY(mu_) = 0;
  std::vector<int> v_ CA_GUARDED_BY(mu_);
  const int limit_ = 4;
  std::atomic<bool> stop_{false};
};
}
"""

    def test_fully_guarded_class_ok(self):
        self.write("widget.cc", self.GUARDED_CLASS)
        self.assertNotIn("guarded-field", self.rules())

    def test_unguarded_member_fails(self):
        self.write("widget.cc", self.GUARDED_CLASS.replace(
            "int x_ CA_GUARDED_BY(mu_) = 0;", "int x_ = 0;"))
        violations = [v for v in analyze.run_analysis(self.root)
                      if v.rule == "guarded-field"]
        self.assertEqual(len(violations), 1)
        self.assertIn("Widget::x_", violations[0].message)

    def test_waiver_on_member_line_ok(self):
        self.write("widget.cc", self.GUARDED_CLASS.replace(
            "int x_ CA_GUARDED_BY(mu_) = 0;",
            "int x_ = 0;  // unguarded: written once in ctor"))
        self.assertNotIn("guarded-field", self.rules())

    def test_waiver_on_preceding_line_ok(self):
        self.write("widget.cc", self.GUARDED_CLASS.replace(
            "int x_ CA_GUARDED_BY(mu_) = 0;",
            "// unguarded: written once in ctor\n  int x_ = 0;"))
        self.assertNotIn("guarded-field", self.rules())

    def test_const_and_atomic_members_exempt(self):
        # limit_ (const) and stop_ (atomic) carry no annotation in the
        # fixture; a clean result shows they are exempt.
        self.write("widget.cc", self.GUARDED_CLASS)
        self.assertNotIn("guarded-field", self.rules())

    def test_const_pointee_is_not_const_member(self):
        # `const T* p_` is a mutable pointer member: still needs guarding.
        self.write("widget.cc", self.GUARDED_CLASS.replace(
            "int x_ CA_GUARDED_BY(mu_) = 0;", "const int* x_ = nullptr;"))
        self.assertIn("guarded-field", self.rules())

    def test_const_pointer_member_exempt(self):
        # `T* const p_` never changes after construction.
        self.write("widget.cc", self.GUARDED_CLASS.replace(
            "int x_ CA_GUARDED_BY(mu_) = 0;", "int* const x_ = nullptr;"))
        self.assertNotIn("guarded-field", self.rules())

    def test_class_without_mutex_not_checked(self):
        self.write("widget.cc", "namespace ca {\nstruct P { int x = 0; };\n}\n")
        self.assertNotIn("guarded-field", self.rules())

    def test_mutex_pointer_member_does_not_make_class_owning(self):
        self.write("widget.cc", """\
namespace ca {
struct Ref {
  const Mutex* mu = nullptr;
  int x = 0;
};
}
""")
        self.assertNotIn("guarded-field", self.rules())

    def test_inline_method_body_does_not_hide_members(self):
        self.write("widget.cc", """\
namespace ca {
class W {
 public:
  int Get() const { return x_; }
 private:
  Mutex mu_{"w"};
  int x_ = 0;
};
}
""")
        self.assertIn("guarded-field", self.rules())

    # ---- nolint-scope ----

    def test_bare_nolint_is_a_violation(self):
        self.write("widget.cc", "int* F() { return new int(1); }  // NOLINT\n")
        rules = self.rules()
        self.assertIn("nolint-scope", rules)
        # ... and a bare NOLINT no longer suppresses anything.
        self.assertIn("naked-new", rules)

    def test_scoped_nolint_suppresses_named_rule_only(self):
        self.write(
            "widget.cc",
            "int* F() { assert(1); return new int(1); }  // NOLINT(naked-new)\n")
        rules = self.rules()
        self.assertNotIn("naked-new", rules)
        self.assertIn("no-assert", rules)  # not named, still fires

    def test_multi_rule_nolint(self):
        self.write(
            "widget.cc",
            "int* F() { assert(1); return new int(1); }"
            "  // NOLINT(naked-new, no-assert)\n")
        rules = self.rules()
        self.assertNotIn("naked-new", rules)
        self.assertNotIn("no-assert", rules)

    def test_unknown_rule_names_are_permitted(self):
        self.write(
            "widget.cc",
            "int F() { return 1; }  // NOLINT(cert-err58-cpp)\n")
        self.assertNotIn("nolint-scope", self.rules())


if __name__ == "__main__":
    unittest.main()
