#!/usr/bin/env python3
"""Compare two kernel-benchmark JSON files and flag regressions.

Dependency-free (stdlib only); wired into CTest as `bench_compare_selftest`.
Two uses:

  compare   bench_compare.py BASELINE CANDIDATE [--threshold 0.25]
            Exits 1 if any benchmark present in both files regressed by
            more than the threshold on real_time (default 25%). Prints a
            per-benchmark table either way. CI runs this against the
            committed BENCH_kernels.json trajectory.

  gate      bench_compare.py BASELINE CANDIDATE --gate 'BM_Store' [--threshold 0.25]
            Hard regression gate over the benchmarks whose names match the
            regex: compares *throughput* (bytes_per_second, else
            items_per_second, else inverted real_time) and exits 1 if any
            matched benchmark dropped by more than the threshold OR is
            missing from the candidate (a silently-deleted benchmark must
            not pass the gate). Unlike compare mode this step is not
            advisory — CI's bench-smoke job fails on it.

  ingest    bench_compare.py --ingest RAW.json --rev LABEL --out BENCH.json
            Appends one entry (rev label + name->metrics map) to the
            trajectory file, creating it if missing. This is how
            BENCH_kernels.json entries are produced; see README "Kernel
            benchmarks".

Both raw google-benchmark JSON ({"benchmarks": [...]}) and the trajectory
format written by --ingest ({"schema": "ca-bench-kernels-v1",
"entries": [...]}) are accepted on the compare path; a trajectory file
contributes its *last* entry.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from typing import Dict, Optional, Tuple

SCHEMA = "ca-bench-kernels-v1"

# Aggregate rows (name like "BM_Foo/8_mean") would double-count the base
# benchmark; plain runs don't emit them but --benchmark_repetitions does.
AGGREGATE_SUFFIXES = ("_mean", "_median", "_stddev", "_cv", "_min", "_max")


def extract_metrics(doc: dict) -> Dict[str, dict]:
    """Returns {benchmark name: metrics} from either accepted format."""
    if doc.get("schema") == SCHEMA:
        entries = doc.get("entries", [])
        if not entries:
            raise ValueError("trajectory file has no entries")
        return dict(entries[-1]["benchmarks"])
    if "benchmarks" in doc:
        out = {}
        for bench in doc["benchmarks"]:
            name = bench["name"]
            if name.endswith(AGGREGATE_SUFFIXES):
                continue
            out[name] = {
                "real_time": bench["real_time"],
                "cpu_time": bench.get("cpu_time"),
                "time_unit": bench.get("time_unit", "ns"),
                "items_per_second": bench.get("items_per_second"),
                "bytes_per_second": bench.get("bytes_per_second"),
            }
        return out
    raise ValueError("unrecognised benchmark JSON (no 'benchmarks' or known schema)")


def load_metrics(path: pathlib.Path) -> Dict[str, dict]:
    with path.open() as f:
        return extract_metrics(json.load(f))


def compare(baseline: Dict[str, dict], candidate: Dict[str, dict],
            threshold: float) -> Tuple[list, list]:
    """Returns (report rows, regressed names)."""
    rows = []
    regressed = []
    for name in sorted(set(baseline) & set(candidate)):
        base = baseline[name]["real_time"]
        cand = candidate[name]["real_time"]
        if base <= 0:
            continue
        ratio = cand / base
        flag = ""
        if ratio > 1.0 + threshold:
            flag = "REGRESSION"
            regressed.append(name)
        elif ratio < 1.0 - threshold:
            flag = "improved"
        rows.append((name, base, cand, ratio, flag))
    return rows, regressed


def throughput_of(metrics: dict) -> Tuple[Optional[float], str]:
    """Best available 'bigger is better' figure for one benchmark."""
    for key in ("bytes_per_second", "items_per_second"):
        value = metrics.get(key)
        if value:
            return float(value), key
    real = metrics.get("real_time")
    if real and real > 0:
        # No throughput counter: gate on inverted time so the comparison
        # direction stays uniform.
        return 1.0 / float(real), "1/real_time"
    return None, ""


def gate(baseline: Dict[str, dict], candidate: Dict[str, dict],
         pattern: str, threshold: float) -> Tuple[list, list]:
    """Returns (report rows, failure messages) for the named-benchmark gate."""
    regex = re.compile(pattern)
    names = sorted(n for n in baseline if regex.search(n))
    rows = []
    failures = []
    for name in names:
        base_tp, key = throughput_of(baseline[name])
        if base_tp is None:
            continue
        if name not in candidate:
            failures.append(f"{name}: missing from candidate run")
            rows.append((name, key, base_tp, None, 0.0, "MISSING"))
            continue
        cand_tp = candidate[name].get(key) if key != "1/real_time" else None
        if key == "1/real_time":
            real = candidate[name].get("real_time")
            cand_tp = (1.0 / float(real)) if real and real > 0 else None
        if not cand_tp:
            failures.append(f"{name}: candidate lacks {key}")
            rows.append((name, key, base_tp, None, 0.0, "NO METRIC"))
            continue
        ratio = float(cand_tp) / base_tp
        flag = ""
        if ratio < 1.0 - threshold:
            flag = "REGRESSION"
            failures.append(f"{name}: {key} dropped to {ratio:.2f}x of baseline")
        elif ratio > 1.0 + threshold:
            flag = "improved"
        rows.append((name, key, base_tp, float(cand_tp), ratio, flag))
    return rows, failures


def cmd_gate(args: argparse.Namespace) -> int:
    baseline = load_metrics(pathlib.Path(args.baseline))
    candidate = load_metrics(pathlib.Path(args.candidate))
    rows, failures = gate(baseline, candidate, args.gate, args.threshold)
    if not rows:
        print(f"bench_compare: no baseline benchmark matches gate '{args.gate}'",
              file=sys.stderr)
        return 2
    width = max(len(r[0]) for r in rows)
    print(f"{'benchmark':<{width}}  {'metric':>16}  {'baseline':>12}  {'candidate':>12}  {'ratio':>7}")
    for name, key, base_tp, cand_tp, ratio, flag in rows:
        cand_str = f"{cand_tp:.3g}" if cand_tp is not None else "-"
        print(f"{name:<{width}}  {key:>16}  {base_tp:>12.3g}  {cand_str:>12}  "
              f"{ratio:>6.2f}x  {flag}")
    if failures:
        print(f"bench_compare: gate '{args.gate}' FAILED "
              f"(threshold {args.threshold:.0%}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"bench_compare: gate '{args.gate}' OK "
          f"({len(rows)} benchmarks within {args.threshold:.0%})")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_metrics(pathlib.Path(args.baseline))
    candidate = load_metrics(pathlib.Path(args.candidate))
    rows, regressed = compare(baseline, candidate, args.threshold)
    if not rows:
        print("bench_compare: no common benchmarks between the two files", file=sys.stderr)
        return 2
    width = max(len(r[0]) for r in rows)
    print(f"{'benchmark':<{width}}  {'base ns':>14}  {'cand ns':>14}  {'ratio':>7}")
    for name, base, cand, ratio, flag in rows:
        print(f"{name:<{width}}  {base:>14.1f}  {cand:>14.1f}  {ratio:>6.2f}x  {flag}")
    missing = sorted(set(baseline) ^ set(candidate))
    if missing:
        print(f"(not in both files, skipped: {', '.join(missing)})")
    if regressed:
        print(f"bench_compare: {len(regressed)} benchmark(s) regressed by more than "
              f"{args.threshold:.0%}: {', '.join(regressed)}", file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({len(rows)} benchmarks within {args.threshold:.0%})")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    raw = pathlib.Path(args.ingest)
    with raw.open() as f:
        metrics = extract_metrics(json.load(f))
    out_path = pathlib.Path(args.out)
    if out_path.exists():
        with out_path.open() as f:
            doc = json.load(f)
        if doc.get("schema") != SCHEMA:
            print(f"bench_compare: {out_path} is not a {SCHEMA} file", file=sys.stderr)
            return 2
    else:
        doc = {"schema": SCHEMA, "entries": []}
    doc["entries"].append({"rev": args.rev, "benchmarks": metrics})
    with out_path.open("w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"bench_compare: appended entry '{args.rev}' "
          f"({len(metrics)} benchmarks) to {out_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="baseline JSON (compare mode)")
    parser.add_argument("candidate", nargs="?", help="candidate JSON (compare mode)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative real_time regression to flag (default 0.25)")
    parser.add_argument("--gate", metavar="REGEX",
                        help="hard throughput gate over matching benchmark names "
                             "(exit 1 on >threshold drop or missing benchmark)")
    parser.add_argument("--ingest", metavar="RAW",
                        help="raw google-benchmark JSON to append to --out")
    parser.add_argument("--rev", default="unlabelled", help="entry label for --ingest")
    parser.add_argument("--out", default="BENCH_kernels.json",
                        help="trajectory file for --ingest")
    args = parser.parse_args(argv)
    if args.ingest:
        return cmd_ingest(args)
    if not args.baseline or not args.candidate:
        parser.error("compare mode needs BASELINE and CANDIDATE (or use --ingest)")
    if args.gate:
        return cmd_gate(args)
    return cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
