#!/usr/bin/env python3
"""Unit tests for tools/lint.py: each rule must fire on a seeded violation
and stay quiet on a clean miniature tree, so the lint CTest is verified
rather than decorative. Stdlib only; wired into CTest as `lint_selftest`."""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import lint  # noqa: E402


CLEAN_HEADER = """\
#ifndef CA_STORE_WIDGET_H_
#define CA_STORE_WIDGET_H_
namespace ca {}
#endif  // CA_STORE_WIDGET_H_
"""

CLEAN_SOURCE = """\
#include "src/store/widget.h"
namespace ca {
int Widget() { return 42; }  // "new" in a comment or string is fine: new
}
"""


class LintTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        self.store = self.root / "src" / "store"
        self.store.mkdir(parents=True)
        self.write("widget.h", CLEAN_HEADER)
        self.write("widget.cc", CLEAN_SOURCE)
        self.write("CMakeLists.txt", "add_library(ca_store widget.cc)\n")

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, name, text):
        (self.store / name).write_text(text)

    def rules(self):
        return {v.rule for v in lint.run_lint(self.root)}

    def test_clean_tree_passes(self):
        self.assertEqual(lint.run_lint(self.root), [])

    def test_wrong_header_guard_fails(self):
        self.write("widget.h", CLEAN_HEADER.replace("CA_STORE_WIDGET_H_", "WIDGET_H"))
        self.assertIn("header-guard", self.rules())

    def test_missing_header_guard_fails(self):
        self.write("widget.h", "namespace ca {}\n")
        self.assertIn("header-guard", self.rules())

    def test_cout_fails(self):
        self.write("widget.cc", '#include <iostream>\nvoid F() { std::cout << "x"; }\n')
        self.assertIn("no-cout", self.rules())

    def test_cout_allowed_in_logging(self):
        common = self.root / "src" / "common"
        common.mkdir()
        (common / "logging.cc").write_text('void F() { std::cout << "x"; }\n')
        (common / "CMakeLists.txt").write_text("add_library(ca_common logging.cc)\n")
        self.assertNotIn("no-cout", self.rules())

    def test_naked_new_fails(self):
        self.write("widget.cc", "int* F() { return new int(1); }\n")
        self.assertIn("naked-new", self.rules())

    def test_new_in_comment_or_string_ok(self):
        self.write("widget.cc", 'const char* F() { return "new"; }  // the new path\n')
        self.assertNotIn("naked-new", self.rules())

    def test_nolint_suppresses(self):
        self.write("widget.cc", "int* F() { return new int(1); }  // NOLINT(naked-new)\n")
        self.assertNotIn("naked-new", self.rules())

    def test_assert_fails(self):
        self.write("widget.cc", "#include <cassert>\nvoid F(int x) { assert(x > 0); }\n")
        self.assertIn("no-assert", self.rules())

    def test_static_assert_ok(self):
        self.write("widget.cc", "static_assert(sizeof(int) == 4);\n")
        self.assertNotIn("no-assert", self.rules())

    def test_unlisted_cc_fails(self):
        self.write("orphan.cc", "namespace ca {}\n")
        self.assertIn("cmake-listed", self.rules())

    def test_check_on_status_fails_in_store(self):
        self.write("widget.cc", "void F() { CA_CHECK(extent.ok()); }\n")
        self.assertIn("check-on-status", self.rules())

    def test_check_ok_fails_in_store(self):
        self.write("widget.cc", "void F() { CA_CHECK_OK(store.Put(1)); }\n")
        self.assertIn("check-on-status", self.rules())

    def test_check_on_status_fires_on_status_accessor(self):
        self.write("widget.cc", "void F() { CA_CHECK_EQ(r.status().code(), code); }\n")
        self.assertIn("check-on-status", self.rules())

    def test_check_on_plain_invariant_ok(self):
        self.write("widget.cc", "void F() { CA_CHECK(ptr != nullptr); }\n")
        self.assertNotIn("check-on-status", self.rules())

    def test_check_on_status_ignored_outside_io_path(self):
        model = self.root / "src" / "model"
        model.mkdir()
        (model / "layer.cc").write_text("void F() { CA_CHECK(extent.ok()); }\n")
        (model / "CMakeLists.txt").write_text("add_library(ca_model layer.cc)\n")
        self.assertNotIn("check-on-status", self.rules())

    def test_check_on_status_nolint_suppresses(self):
        self.write("widget.cc",
                   "void F() { CA_CHECK(extent.ok()); }  // NOLINT(check-on-status)\n")
        self.assertNotIn("check-on-status", self.rules())

    def test_raw_clock_fails_in_store(self):
        self.write(
            "widget.cc",
            "void F() { auto t = std::chrono::steady_clock::now(); (void)t; }\n",
        )
        self.assertIn("no-raw-clock", self.rules())

    def test_raw_clock_fails_on_system_clock(self):
        self.write(
            "widget.cc",
            "void F() { auto t = std::chrono::system_clock::now(); (void)t; }\n",
        )
        self.assertIn("no-raw-clock", self.rules())

    def test_raw_clock_ignored_outside_io_path(self):
        model = self.root / "src" / "model"
        model.mkdir()
        (model / "layer.cc").write_text(
            "void F() { auto t = std::chrono::steady_clock::now(); (void)t; }\n"
        )
        (model / "CMakeLists.txt").write_text("add_library(ca_model layer.cc)\n")
        self.assertNotIn("no-raw-clock", self.rules())

    def test_sleep_for_duration_ok(self):
        self.write(
            "widget.cc",
            "void F() { std::this_thread::sleep_for(std::chrono::microseconds(5)); }\n",
        )
        self.assertNotIn("no-raw-clock", self.rules())

    def test_raw_clock_in_comment_ok(self):
        self.write("widget.cc", "void F() {}  // steady_clock is banned here\n")
        self.assertNotIn("no-raw-clock", self.rules())

    def test_guard_derivation(self):
        self.assertEqual(
            lint.expected_guard(pathlib.PurePath("src/common/thread_pool.h")),
            "CA_COMMON_THREAD_POOL_H_",
        )
        self.assertEqual(
            lint.expected_guard(pathlib.PurePath("src/store/types.h")),
            "CA_STORE_TYPES_H_",
        )


if __name__ == "__main__":
    unittest.main()
