#!/usr/bin/env python3
"""Repo lint: enforces CachedAttention source-tree invariants.

Dependency-free (stdlib only) so it runs anywhere a python3 exists; wired
into CTest as the `lint` test. Rules (see tools/README.md for rationale):

  header-guard   every .h under src/ uses an include guard derived from its
                 path: src/store/types.h -> CA_STORE_TYPES_H_
  no-cout        no std::cout in src/ outside src/common/logging.* (all
                 diagnostics go through CA_LOG so they are leveled,
                 filterable and thread-safe; CA_CHECK's std::cerr abort path
                 is deliberate and exempt)
  naked-new      no `new` expressions in src/ (RAII throughout; no owning
                 raw pointers)
  cmake-listed   every .cc under src/ is declared in its directory's
                 CMakeLists.txt (an unlisted file silently never builds)
  no-assert      no assert() in src/ — CA_CHECK stays on in release builds,
                 where silent cache corruption would otherwise go unnoticed
  check-on-status  no CA_CHECK / CA_CHECK_OK on a Status or Result in
                 src/store and src/core: tier I/O failures must degrade to a
                 cache miss (return the Status), never abort the serving
                 process (DESIGN.md §10). CA_CHECK on non-Status invariants
                 is unaffected.
  no-raw-clock   no raw std::chrono clock reads (steady_clock, system_clock,
                 high_resolution_clock) in src/store and src/core: timing
                 there must go through ca::TraceNowNs (src/obs/trace.h) so
                 engine/store timestamps land on the same timeline as the
                 trace spans (DESIGN.md §11). sleep_for with a plain duration
                 is fine; src/obs itself owns the clock.

A line containing `NOLINT` is exempt from content rules (used for the one
deliberate leaky-singleton allocation).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List, NamedTuple


class Violation(NamedTuple):
    path: str  # repo-relative
    line: int  # 1-based; 0 for file-level violations
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line structure.

    Replaced regions become spaces (newlines kept) so line numbers of the
    remaining code survive. Handles //, /* */, "..." and '...' with escapes;
    raw strings are not used in this codebase.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(rel: pathlib.PurePath) -> str:
    """src/store/types.h -> CA_STORE_TYPES_H_ (the `src/` prefix is dropped)."""
    parts = rel.parts[1:] if rel.parts and rel.parts[0] == "src" else rel.parts
    stem = "_".join(parts)
    return "CA_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


def exempt(line: str) -> bool:
    return "NOLINT" in line


def check_header_guard(rel: pathlib.PurePath, text: str) -> List[Violation]:
    guard = expected_guard(rel)
    ifndef = re.search(r"^#ifndef\s+(\S+)", text, re.MULTILINE)
    if ifndef is None:
        return [Violation(str(rel), 0, "header-guard", f"missing include guard {guard}")]
    found = ifndef.group(1)
    if found != guard:
        line = text[: ifndef.start()].count("\n") + 1
        return [
            Violation(
                str(rel), line, "header-guard",
                f"guard {found} does not match path-derived {guard}",
            )
        ]
    if f"#define {guard}" not in text:
        return [Violation(str(rel), 0, "header-guard", f"guard {guard} never #defined")]
    return []


def check_content_rules(rel: pathlib.PurePath, text: str) -> List[Violation]:
    violations: List[Violation] = []
    raw_lines = text.splitlines()
    code = strip_comments_and_strings(text)
    code_lines = code.splitlines()
    is_logging = rel.parts[-1].startswith("logging.")
    # I/O-path layers where an aborting check on a fallible operation would
    # turn a recoverable fault into a crash (DESIGN.md §10).
    is_io_path = rel.parts[:2] in (("src", "store"), ("src", "core"))

    for idx, code_line in enumerate(code_lines):
        raw = raw_lines[idx] if idx < len(raw_lines) else ""
        if exempt(raw):
            continue
        lineno = idx + 1
        if not is_logging and re.search(r"\bstd\s*::\s*cout\b", code_line):
            violations.append(
                Violation(str(rel), lineno, "no-cout",
                          "use CA_LOG instead of writing to std::cout")
            )
        if re.search(r"\bnew\b", code_line):
            violations.append(
                Violation(str(rel), lineno, "naked-new",
                          "no `new` expressions; use std::make_unique or values")
            )
        if re.search(r"\bassert\s*\(", code_line):
            violations.append(
                Violation(str(rel), lineno, "no-assert",
                          "use CA_CHECK (stays on in release) instead of assert")
            )
        if is_io_path and re.search(
            r"\b(steady_clock|system_clock|high_resolution_clock)\b", code_line
        ):
            violations.append(
                Violation(str(rel), lineno, "no-raw-clock",
                          "use ca::TraceNowNs (src/obs/trace.h) so timestamps "
                          "share the trace timeline; see DESIGN.md §11")
            )
        if is_io_path and (
            re.search(r"\bCA_CHECK_OK\s*\(", code_line)
            or (
                re.search(r"\bCA_CHECK(_\w+)?\s*\(", code_line)
                and re.search(r"(\.|->)\s*(ok|status)\s*\(", code_line)
            )
        ):
            violations.append(
                Violation(str(rel), lineno, "check-on-status",
                          "I/O failures must degrade to a miss (return the "
                          "Status), not abort; see DESIGN.md §10")
            )
    return violations


def check_cmake_listed(src_dir: pathlib.Path, root: pathlib.Path) -> List[Violation]:
    violations: List[Violation] = []
    for cc in sorted(src_dir.rglob("*.cc")):
        cmake = cc.parent / "CMakeLists.txt"
        rel = cc.relative_to(root)
        if not cmake.is_file():
            violations.append(
                Violation(str(rel), 0, "cmake-listed",
                          f"no CMakeLists.txt next to it ({cmake.relative_to(root)})")
            )
            continue
        listing = cmake.read_text(encoding="utf-8")
        if not re.search(rf"\b{re.escape(cc.name)}\b", listing):
            violations.append(
                Violation(str(rel), 0, "cmake-listed",
                          f"not declared in {cmake.relative_to(root)}; it never builds")
            )
    return violations


def run_lint(root: pathlib.Path) -> List[Violation]:
    src_dir = root / "src"
    violations: List[Violation] = []
    if not src_dir.is_dir():
        return [Violation("src", 0, "layout", f"no src/ directory under {root}")]
    for path in sorted(src_dir.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root)
        text = path.read_text(encoding="utf-8")
        if path.suffix == ".h":
            violations.extend(check_header_guard(rel, text))
        violations.extend(check_content_rules(rel, text))
    violations.extend(check_cmake_listed(src_dir, root))
    return violations


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root (default: cwd)")
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root).resolve()
    violations = run_lint(root)
    for v in violations:
        print(v)
    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
