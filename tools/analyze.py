#!/usr/bin/env python3
"""Repo analyzer: enforces CachedAttention source-tree invariants.

Dependency-free (stdlib only) so it runs anywhere a python3 exists; wired
into CTest as the `analyze` test and run in every CI job. Successor to the
single-pass tools/lint.py. Rules (see tools/README.md for rationale):

  header-guard   every .h under src/ uses an include guard derived from its
                 path: src/store/types.h -> CA_STORE_TYPES_H_
  no-cout        no std::cout in src/ outside src/common/logging.* (all
                 diagnostics go through CA_LOG so they are leveled,
                 filterable and thread-safe; CA_CHECK's std::cerr abort path
                 is deliberate and exempt)
  naked-new      no `new` expressions in src/ (RAII throughout; no owning
                 raw pointers)
  cmake-listed   every .cc under src/ is declared in its directory's
                 CMakeLists.txt (an unlisted file silently never builds)
  no-assert      no assert() in src/ — CA_CHECK stays on in release builds,
                 where silent cache corruption would otherwise go unnoticed
  check-on-status  no CA_CHECK / CA_CHECK_OK on a Status or Result anywhere
                 in src/: fallible operations must propagate their Status —
                 in the store/engine tiers so I/O faults degrade to a cache
                 miss instead of aborting the serving process (DESIGN.md
                 §10), and everywhere else because a discarded-or-aborted
                 Status hides the error path the caller was meant to handle.
                 CA_CHECK on non-Status invariants is unaffected.
  no-raw-clock   no raw std::chrono clock reads (steady_clock, system_clock,
                 high_resolution_clock) in src/store and src/core: timing
                 there must go through ca::TraceNowNs (src/obs/trace.h) so
                 engine/store timestamps land on the same timeline as the
                 trace spans (DESIGN.md §11). sleep_for with a plain duration
                 is fine; src/obs itself owns the clock.
  include-layering  `#include "src/<layer>/..."` edges must follow the layer
                 DAG in LAYER_DEPS (DESIGN.md §13): common → obs → tensor →
                 model → store → core → sched → serve/sim. A lower layer
                 including a higher one is how cyclic link dependencies and
                 untestable seams start.
  guarded-field  in any class that owns a ca::Mutex, every mutable data
                 member must either carry CA_GUARDED_BY(...) (so Clang's
                 thread-safety analysis covers it) or an explicit
                 `// unguarded: <reason>` waiver on its own or the preceding
                 line (DESIGN.md §13). const/atomic members and the sync
                 primitives themselves are exempt.
  nolint-scope   suppressions must name the rule(s) they silence:
                 `NOLINT(rule-a, rule-b)`. A bare NOLINT is itself a
                 violation — blanket suppression hides every future rule on
                 that line.

Suppression: a line containing `NOLINT(rule, ...)` is exempt from exactly
the named rules. Rule names that this analyzer does not know (e.g. clang-tidy
check names) are permitted and simply have no effect here.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Dict, List, NamedTuple, Optional, Set

# The layering DAG (DESIGN.md §13): src/<layer> may include src/<dep> iff
# dep is in its entry. Same-layer includes are always allowed. A directory
# missing from this map is itself a violation — extending the tree means
# deciding where the new layer sits.
LAYER_DEPS: Dict[str, Set[str]] = {
    "common": set(),
    "obs": {"common"},
    "tensor": {"common", "obs"},
    "model": {"common", "obs", "tensor"},
    "train": {"common", "obs", "tensor", "model"},
    "store": {"common", "obs"},
    "workload": {"common", "obs", "store"},
    "core": {"common", "obs", "tensor", "model", "store"},
    "sched": {"common", "obs", "store"},
    "serve": {"common", "obs", "tensor", "model", "store", "core", "sched"},
    "cluster": {"common", "obs", "tensor", "model", "store", "core", "sched", "serve"},
    "sim": {"common", "obs", "tensor", "model", "store", "sched", "workload", "cluster"},
}


class Violation(NamedTuple):
    path: str  # repo-relative
    line: int  # 1-based; 0 for file-level violations
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


_NOLINT_SCOPED = re.compile(r"NOLINT\(([^)]*)\)")
_NOLINT_ANY = re.compile(r"\bNOLINT\b")


def nolint_rules(raw_line: str) -> Optional[Set[str]]:
    """Rules a line's NOLINT suppresses, or None if the line has no NOLINT.

    A bare NOLINT (no rule list) returns the empty set: it suppresses
    nothing and the nolint-scope rule reports it.
    """
    if not _NOLINT_ANY.search(raw_line):
        return None
    rules: Set[str] = set()
    for m in _NOLINT_SCOPED.finditer(raw_line):
        rules.update(r.strip() for r in m.group(1).split(",") if r.strip())
    return rules


def suppressed(raw_line: str, rule: str) -> bool:
    rules = nolint_rules(raw_line)
    return rules is not None and rule in rules


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line structure.

    Replaced regions become spaces (newlines kept) so line numbers of the
    remaining code survive. Handles //, /* */, "..." and '...' with escapes;
    raw strings are not used in this codebase.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(rel: pathlib.PurePath) -> str:
    """src/store/types.h -> CA_STORE_TYPES_H_ (the `src/` prefix is dropped)."""
    parts = rel.parts[1:] if rel.parts and rel.parts[0] == "src" else rel.parts
    stem = "_".join(parts)
    return "CA_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


def check_header_guard(rel: pathlib.PurePath, text: str) -> List[Violation]:
    guard = expected_guard(rel)
    ifndef = re.search(r"^#ifndef\s+(\S+)", text, re.MULTILINE)
    if ifndef is None:
        return [Violation(str(rel), 0, "header-guard", f"missing include guard {guard}")]
    found = ifndef.group(1)
    if found != guard:
        line = text[: ifndef.start()].count("\n") + 1
        return [
            Violation(
                str(rel), line, "header-guard",
                f"guard {found} does not match path-derived {guard}",
            )
        ]
    if f"#define {guard}" not in text:
        return [Violation(str(rel), 0, "header-guard", f"guard {guard} never #defined")]
    return []


def check_content_rules(rel: pathlib.PurePath, text: str) -> List[Violation]:
    violations: List[Violation] = []
    raw_lines = text.splitlines()
    code = strip_comments_and_strings(text)
    code_lines = code.splitlines()
    is_logging = rel.parts[-1].startswith("logging.")
    # The file that defines CA_CHECK_OK necessarily spells it out.
    is_check_impl = rel.parts[-2:] == ("common", "check.h")
    # Layers where timing must share the trace timeline (DESIGN.md §11).
    is_io_path = rel.parts[:2] in (("src", "store"), ("src", "core"))
    layer = rel.parts[1] if len(rel.parts) > 2 and rel.parts[0] == "src" else None

    for idx, raw in enumerate(raw_lines):
        code_line = code_lines[idx] if idx < len(code_lines) else ""
        lineno = idx + 1

        # nolint-scope runs on the raw line BEFORE suppression: a bare
        # NOLINT must not be able to silence the rule that rejects it.
        rules_named = nolint_rules(raw)
        if rules_named is not None and not rules_named:
            violations.append(
                Violation(str(rel), lineno, "nolint-scope",
                          "bare NOLINT; name the suppressed rule(s): NOLINT(rule)")
            )

        def hit(rule: str, message: str) -> None:
            if not suppressed(raw, rule):
                violations.append(Violation(str(rel), lineno, rule, message))

        if not is_logging and re.search(r"\bstd\s*::\s*cout\b", code_line):
            hit("no-cout", "use CA_LOG instead of writing to std::cout")
        if re.search(r"\bnew\b", code_line):
            hit("naked-new", "no `new` expressions; use std::make_unique or values")
        if re.search(r"\bassert\s*\(", code_line):
            hit("no-assert", "use CA_CHECK (stays on in release) instead of assert")
        if is_io_path and re.search(
            r"\b(steady_clock|system_clock|high_resolution_clock)\b", code_line
        ):
            hit("no-raw-clock",
                "use ca::TraceNowNs (src/obs/trace.h) so timestamps "
                "share the trace timeline; see DESIGN.md §11")
        if not is_check_impl and re.search(r"\bCA_CHECK(_\w+)?\s*\(", code_line):
            # A CA_CHECK's argument list may wrap (clang-format breaks long
            # conditions), so scan to the end of the statement — up to 3
            # continuation lines or the first ';' — not just this line.
            # Async submission/completion code is the usual offender: the
            # Status comes back on another line than the CA_CHECK.
            window_parts = [code_line]
            if ";" not in code_line:
                for follow in code_lines[idx + 1:idx + 4]:
                    window_parts.append(follow)
                    if ";" in follow:
                        break
            window = " ".join(window_parts)
            if re.search(r"\bCA_CHECK_OK\s*\(", code_line) or re.search(
                r"(\.|->)\s*(ok|status)\s*\(", window
            ):
                hit("check-on-status",
                    "propagate the Status instead of aborting on it; in tier "
                    "I/O this must degrade to a miss (DESIGN.md §10)")
        if layer is not None:
            m = re.search(r'^\s*#\s*include\s+"src/([A-Za-z0-9_]+)/', raw)
            if m is not None:
                target = m.group(1)
                if layer not in LAYER_DEPS:
                    hit("include-layering",
                        f"layer src/{layer} is not in the layering DAG; add it "
                        "to LAYER_DEPS in tools/analyze.py (DESIGN.md §13)")
                elif target != layer and target not in LAYER_DEPS.get(layer, set()):
                    hit("include-layering",
                        f"src/{layer} may not include src/{target}; allowed: "
                        f"{sorted(LAYER_DEPS[layer]) or 'nothing below it'} "
                        "(DESIGN.md §13)")
    return violations


# ----------------------------------------------------------------------------
# guarded-field: completeness of thread-safety annotations.

_MEMBER_SKIP_KEYWORDS = (
    "using", "typedef", "static", "friend", "class", "struct", "enum",
    "union", "template", "operator", "virtual",
)

# Members that are synchronization primitives themselves, not data they guard.
_SYNC_TYPE = re.compile(
    r"\b(Mutex|CondVar|std\s*::\s*mutex|std\s*::\s*condition_variable)\b")
_ATOMIC_TYPE = re.compile(r"\batomic\b")


class _Member(NamedTuple):
    line: int  # 1-based line of the statement start
    text: str  # full statement text (annotations included)
    name: str


class _ClassBody(NamedTuple):
    name: str
    line: int  # 1-based line of the class keyword
    start: int  # offset of `{` in the stripped text
    end: int  # offset one past the matching `}`


def _find_class_bodies(code: str) -> List[_ClassBody]:
    bodies: List[_ClassBody] = []
    for m in re.finditer(r"\b(class|struct)\s+([A-Za-z_]\w*)", code):
        # Walk to the body `{`, giving up at `;` (forward declaration) or
        # another class keyword (the match was e.g. a template parameter).
        i = m.end()
        while i < len(code) and code[i] not in "{;":
            i += 1
        if i >= len(code) or code[i] == ";":
            continue
        depth = 0
        j = i
        while j < len(code):
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        bodies.append(
            _ClassBody(m.group(2), code[: m.start()].count("\n") + 1, i, j + 1))
    return bodies


def _body_statements(code: str, body: _ClassBody) -> List[_Member]:
    """Splits a class body into depth-1 statements.

    A statement ends at a `;` at depth 1, or at the close of a depth-1 brace
    group (method definition, brace initializer) plus its trailing `;`.
    """
    statements: List[_Member] = []
    i = body.start + 1
    end = body.end - 1
    stmt_start = i
    depth = 0
    while i < end:
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                # Consume an optional trailing `;` (brace init / nested type).
                j = i + 1
                while j < end and code[j] in " \t\n":
                    j += 1
                if j < end and code[j] == ";":
                    i = j
                statements.append(_stmt(code, stmt_start, i + 1))
                stmt_start = i + 1
        elif c == ";" and depth == 0:
            statements.append(_stmt(code, stmt_start, i + 1))
            stmt_start = i + 1
        i += 1
    return [s for s in statements if s.text.strip()]


def _stmt(code: str, start: int, stop: int) -> _Member:
    text = code[start:stop]
    # Line number of the first non-whitespace character.
    lead = len(text) - len(text.lstrip())
    line = code[: start + lead].count("\n") + 1
    return _Member(line, text, "")


def _blank_nested(text: str, open_ch: str, close_ch: str) -> str:
    """Blanks balanced open..close regions (template args, macro parens)."""
    pattern = re.compile(re.escape(open_ch) + r"[^" + re.escape(open_ch)
                         + re.escape(close_ch) + r"]*" + re.escape(close_ch))
    prev = None
    while prev != text:
        prev = text
        text = pattern.sub(lambda m: " " * len(m.group(0)), text)
    return text


def _parse_data_member(stmt: _Member) -> Optional[_Member]:
    """Returns the statement as a data member, or None if it is not one."""
    text = stmt.text
    # Peel access-specifier labels fused to the front of the statement.
    text = re.sub(r"^\s*(public|private|protected)\s*:", " ", text)
    stripped = text.strip()
    if not stripped or stripped.startswith(("#", "~")):
        return None
    first = re.match(r"[A-Za-z_]\w*", stripped)
    if first is not None and first.group(0) in _MEMBER_SKIP_KEYWORDS:
        return None
    if re.search(r"\boperator\b", stripped):
        return None
    # Blank template args and annotation-macro invocations, then cut at the
    # initializer: any paren left before it means a function declaration.
    flat = _blank_nested(text, "<", ">")
    prev = None
    while prev != flat:
        prev = flat
        flat = re.sub(r"\bCA_\w+\s*\([^()]*\)",
                      lambda m: " " * len(m.group(0)), flat)
    decl = re.split(r"[={]", flat, maxsplit=1)[0].rstrip().rstrip(";")
    if "(" in decl:
        return None
    name_match = re.search(r"\b([A-Za-z_]\w*)\s*(\[[^\]]*\]\s*)*$", decl.strip())
    if name_match is None:
        return None
    return _Member(stmt.line, stmt.text, name_match.group(1))


def _member_is_const(stmt_text: str) -> bool:
    """True for `const T x` and `T* const x`, false for `const T* x`.

    The member itself is immutable iff some `const` has no `*` between it
    and the member name (a pointer-to-const is still a mutable pointer).
    """
    flat = _blank_nested(stmt_text, "<", ">")
    decl = re.split(r"[={;]", flat, maxsplit=1)[0]
    for m in re.finditer(r"\bconst\b", decl):
        if "*" not in decl[m.end():]:
            return True
    return False


def check_guarded_fields(rel: pathlib.PurePath, text: str) -> List[Violation]:
    violations: List[Violation] = []
    raw_lines = text.splitlines()
    code = strip_comments_and_strings(text)
    for body in _find_class_bodies(code):
        members = [m for m in (_parse_data_member(s) for s in _body_statements(code, body))
                   if m is not None]
        # Owning means a ca::Mutex *value* member: a Mutex pointer/reference
        # is a handle to synchronization living elsewhere.
        owns_mutex = any(
            re.search(r"\b(ca\s*::\s*)?Mutex\b(?!\s*[*&])", m.text)
            for m in members)
        if not owns_mutex:
            continue
        for m in members:
            if _SYNC_TYPE.search(m.text) or _ATOMIC_TYPE.search(m.text):
                continue
            if _member_is_const(m.text):
                continue
            if re.search(r"\bCA(_PT)?_GUARDED_BY\s*\(", m.text):
                continue
            raw = raw_lines[m.line - 1] if m.line - 1 < len(raw_lines) else ""
            prev = raw_lines[m.line - 2] if m.line >= 2 else ""
            if "// unguarded:" in raw or "// unguarded:" in prev:
                continue
            if suppressed(raw, "guarded-field"):
                continue
            violations.append(
                Violation(
                    str(rel), m.line, "guarded-field",
                    f"{body.name}::{m.name} is mutable in a class owning a "
                    "ca::Mutex; add CA_GUARDED_BY(mu) or a `// unguarded: "
                    "<reason>` waiver (DESIGN.md §13)"))
    return violations


def check_cmake_listed(src_dir: pathlib.Path, root: pathlib.Path) -> List[Violation]:
    violations: List[Violation] = []
    for cc in sorted(src_dir.rglob("*.cc")):
        cmake = cc.parent / "CMakeLists.txt"
        rel = cc.relative_to(root)
        if not cmake.is_file():
            violations.append(
                Violation(str(rel), 0, "cmake-listed",
                          f"no CMakeLists.txt next to it ({cmake.relative_to(root)})")
            )
            continue
        listing = cmake.read_text(encoding="utf-8")
        if not re.search(rf"\b{re.escape(cc.name)}\b", listing):
            violations.append(
                Violation(str(rel), 0, "cmake-listed",
                          f"not declared in {cmake.relative_to(root)}; it never builds")
            )
    return violations


def run_analysis(root: pathlib.Path) -> List[Violation]:
    src_dir = root / "src"
    violations: List[Violation] = []
    if not src_dir.is_dir():
        return [Violation("src", 0, "layout", f"no src/ directory under {root}")]
    for path in sorted(src_dir.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root)
        text = path.read_text(encoding="utf-8")
        if path.suffix == ".h":
            violations.extend(check_header_guard(rel, text))
        violations.extend(check_content_rules(rel, text))
        violations.extend(check_guarded_fields(rel, text))
    violations.extend(check_cmake_listed(src_dir, root))
    return violations


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root (default: cwd)")
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root).resolve()
    violations = run_analysis(root)
    for v in violations:
        print(v)
    if violations:
        print(f"analyze: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("analyze: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
