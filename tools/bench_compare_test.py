#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py: regression detection must fire on
a seeded slowdown and stay quiet within the threshold, and the ingest path
must round-trip raw google-benchmark JSON into the trajectory format.
Stdlib only; wired into CTest as `bench_compare_selftest`."""

import json
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import bench_compare  # noqa: E402


def raw_doc(times):
    """Raw google-benchmark JSON with the given {name: real_time} map."""
    return {
        "context": {"host_name": "test"},
        "benchmarks": [
            {"name": n, "real_time": t, "cpu_time": t, "time_unit": "ns",
             "items_per_second": 1e9 / t}
            for n, t in times.items()
        ],
    }


def throughput_doc(rates):
    """Raw google-benchmark JSON with the given {name: bytes_per_second} map."""
    return {
        "context": {"host_name": "test"},
        "benchmarks": [
            {"name": n, "real_time": 1000.0, "cpu_time": 1000.0, "time_unit": "ns",
             "bytes_per_second": r}
            for n, r in rates.items()
        ],
    }


class ExtractTest(unittest.TestCase):
    def test_raw_format(self):
        metrics = bench_compare.extract_metrics(raw_doc({"BM_A/8": 100.0}))
        self.assertEqual(metrics["BM_A/8"]["real_time"], 100.0)
        self.assertEqual(metrics["BM_A/8"]["time_unit"], "ns")

    def test_aggregate_rows_skipped(self):
        doc = raw_doc({"BM_A/8": 100.0, "BM_A/8_mean": 101.0, "BM_A/8_stddev": 2.0})
        metrics = bench_compare.extract_metrics(doc)
        self.assertEqual(sorted(metrics), ["BM_A/8"])

    def test_trajectory_uses_last_entry(self):
        doc = {
            "schema": bench_compare.SCHEMA,
            "entries": [
                {"rev": "old", "benchmarks": {"BM_A": {"real_time": 200.0}}},
                {"rev": "new", "benchmarks": {"BM_A": {"real_time": 50.0}}},
            ],
        }
        self.assertEqual(bench_compare.extract_metrics(doc)["BM_A"]["real_time"], 50.0)

    def test_unknown_format_rejected(self):
        with self.assertRaises(ValueError):
            bench_compare.extract_metrics({"something": "else"})


class CompareTest(unittest.TestCase):
    def metrics(self, times):
        return bench_compare.extract_metrics(raw_doc(times))

    def test_within_threshold_passes(self):
        base = self.metrics({"BM_A": 100.0, "BM_B": 50.0})
        cand = self.metrics({"BM_A": 110.0, "BM_B": 45.0})
        _, regressed = bench_compare.compare(base, cand, 0.25)
        self.assertEqual(regressed, [])

    def test_regression_flagged(self):
        base = self.metrics({"BM_A": 100.0, "BM_B": 50.0})
        cand = self.metrics({"BM_A": 140.0, "BM_B": 50.0})
        _, regressed = bench_compare.compare(base, cand, 0.25)
        self.assertEqual(regressed, ["BM_A"])

    def test_only_common_benchmarks_compared(self):
        base = self.metrics({"BM_A": 100.0, "BM_OLD": 10.0})
        cand = self.metrics({"BM_A": 100.0, "BM_NEW": 999.0})
        rows, regressed = bench_compare.compare(base, cand, 0.25)
        self.assertEqual([r[0] for r in rows], ["BM_A"])
        self.assertEqual(regressed, [])


class GateTest(unittest.TestCase):
    def metrics(self, doc):
        return bench_compare.extract_metrics(doc)

    def test_gate_passes_within_threshold(self):
        base = self.metrics(throughput_doc({"BM_Store/1": 10e9, "BM_Other": 1e9}))
        cand = self.metrics(throughput_doc({"BM_Store/1": 9e9, "BM_Other": 0.1e9}))
        rows, failures = bench_compare.gate(base, cand, "BM_Store", 0.25)
        # BM_Other regressed 10x but is outside the gate pattern.
        self.assertEqual([r[0] for r in rows], ["BM_Store/1"])
        self.assertEqual(failures, [])

    def test_gate_fails_on_throughput_drop(self):
        base = self.metrics(throughput_doc({"BM_Store/1": 10e9}))
        cand = self.metrics(throughput_doc({"BM_Store/1": 5e9}))
        _, failures = bench_compare.gate(base, cand, "BM_Store", 0.25)
        self.assertEqual(len(failures), 1)
        self.assertIn("BM_Store/1", failures[0])

    def test_gate_fails_on_missing_benchmark(self):
        # A deleted benchmark must not silently pass the gate.
        base = self.metrics(throughput_doc({"BM_Store/1": 10e9, "BM_Store/2": 10e9}))
        cand = self.metrics(throughput_doc({"BM_Store/1": 10e9}))
        _, failures = bench_compare.gate(base, cand, "BM_Store", 0.25)
        self.assertEqual(len(failures), 1)
        self.assertIn("missing", failures[0])

    def test_gate_falls_back_to_inverted_real_time(self):
        # No throughput counters: slower real_time must still fail the gate.
        base = self.metrics(raw_doc({"BM_StorePutAccess": 100.0}))
        for name in base:
            base[name]["items_per_second"] = None
        cand = self.metrics(raw_doc({"BM_StorePutAccess": 200.0}))
        for name in cand:
            cand[name]["items_per_second"] = None
        _, failures = bench_compare.gate(base, cand, "BM_Store", 0.25)
        self.assertEqual(len(failures), 1)

    def test_gate_cli_exit_codes(self):
        tmp = tempfile.TemporaryDirectory()
        self.addCleanup(tmp.cleanup)
        d = pathlib.Path(tmp.name)
        base = d / "base.json"
        base.write_text(json.dumps(throughput_doc({"BM_Store/1": 10e9})))
        ok = d / "ok.json"
        ok.write_text(json.dumps(throughput_doc({"BM_Store/1": 11e9})))
        bad = d / "bad.json"
        bad.write_text(json.dumps(throughput_doc({"BM_Store/1": 2e9})))
        self.assertEqual(bench_compare.main([str(base), str(ok), "--gate", "BM_Store"]), 0)
        self.assertEqual(bench_compare.main([str(base), str(bad), "--gate", "BM_Store"]), 1)
        # A pattern matching nothing is a usage error, not a pass.
        self.assertEqual(bench_compare.main([str(base), str(ok), "--gate", "BM_Nope"]), 2)


class CliTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = pathlib.Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, name, doc):
        path = self.dir / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_compare_exit_codes(self):
        base = self.write("base.json", raw_doc({"BM_A": 100.0}))
        ok = self.write("ok.json", raw_doc({"BM_A": 105.0}))
        bad = self.write("bad.json", raw_doc({"BM_A": 200.0}))
        self.assertEqual(bench_compare.main([base, ok]), 0)
        self.assertEqual(bench_compare.main([base, bad]), 1)

    def test_ingest_creates_and_appends(self):
        raw = self.write("raw.json", raw_doc({"BM_A": 100.0}))
        out = str(self.dir / "BENCH.json")
        self.assertEqual(bench_compare.main(["--ingest", raw, "--rev", "r1", "--out", out]), 0)
        self.assertEqual(bench_compare.main(["--ingest", raw, "--rev", "r2", "--out", out]), 0)
        doc = json.loads(pathlib.Path(out).read_text())
        self.assertEqual(doc["schema"], bench_compare.SCHEMA)
        self.assertEqual([e["rev"] for e in doc["entries"]], ["r1", "r2"])
        # The trajectory file is itself valid compare input (last entry wins).
        self.assertEqual(bench_compare.main([out, raw]), 0)


if __name__ == "__main__":
    unittest.main()
